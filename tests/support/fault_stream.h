#ifndef QDCBIR_TESTS_SUPPORT_FAULT_STREAM_H_
#define QDCBIR_TESTS_SUPPORT_FAULT_STREAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "qdcbir/core/byte_source.h"
#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace testsupport {

/// One deterministic fault to inject into a byte stream. Every field is a
/// precise, reproducible event — no hidden randomness; tests that want
/// randomized placement draw offsets from a seeded `Rng` (see
/// `SampleOffsets`) and record the seed, so any failure replays exactly.
struct FaultSpec {
  /// When >= 0, the stream reports `min(base size, truncate_at)` as its
  /// size and refuses reads past it — a file cut at byte N.
  std::int64_t truncate_at = -1;
  /// When >= 0, the byte at this offset reads back XOR'd with `flip_mask` —
  /// a bit flip at rest (storage rot, bad cable).
  std::int64_t flip_offset = -1;
  std::uint8_t flip_mask = 0x01;
  /// When >= 0, the Nth `ReadAt` call (0-based, in arrival order) fails
  /// with `kIoError` — a transient device error.
  std::int64_t fail_op = -1;
  /// When >= 0, the Nth `ReadAt` call delivers only half the requested
  /// window and reports `kTruncated` — a short read at stream end.
  std::int64_t short_read_op = -1;
};

/// A `ByteSource` decorator that injects the faults described by a
/// `FaultSpec` into an otherwise well-behaved source. Thread-safe like the
/// `ByteSource` contract requires: the operation counter is atomic, so
/// op-indexed faults fire exactly once even under the async loader (which
/// op they hit is scheduling-dependent there; with a sequential loader the
/// arrival order — and therefore the victim operation — is deterministic).
class FaultInjectingSource : public ByteSource {
 public:
  FaultInjectingSource(const ByteSource& base, const FaultSpec& spec)
      : base_(base), spec_(spec) {}

  std::uint64_t Size() const override;
  Status ReadAt(std::uint64_t offset, std::size_t n,
                char* out) const override;

  /// Number of `ReadAt` calls observed so far (for sizing op sweeps).
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

 private:
  const ByteSource& base_;
  FaultSpec spec_;
  mutable std::atomic<std::uint64_t> ops_{0};
};

/// Copy of `bytes` cut at byte `n` (clamped to the size).
std::string TruncateAt(const std::string& bytes, std::size_t n);

/// Copy of `bytes` with bit `bit` (0..7) of byte `offset` flipped.
std::string FlipBit(const std::string& bytes, std::size_t offset, int bit);

/// `count` distinct offsets in `[0, size)`, drawn from `rng` and sorted —
/// the corruption sweep's seeded interior probe points.
std::vector<std::size_t> SampleOffsets(Rng& rng, std::size_t size,
                                       std::size_t count);

}  // namespace testsupport
}  // namespace qdcbir

#endif  // QDCBIR_TESTS_SUPPORT_FAULT_STREAM_H_
