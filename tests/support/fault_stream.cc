#include "support/fault_stream.h"

#include <algorithm>

namespace qdcbir {
namespace testsupport {

std::uint64_t FaultInjectingSource::Size() const {
  const std::uint64_t base = base_.Size();
  if (spec_.truncate_at < 0) return base;
  return std::min<std::uint64_t>(
      base, static_cast<std::uint64_t>(spec_.truncate_at));
}

Status FaultInjectingSource::ReadAt(std::uint64_t offset, std::size_t n,
                                    char* out) const {
  const std::uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed);
  if (spec_.fail_op >= 0 &&
      op == static_cast<std::uint64_t>(spec_.fail_op)) {
    return Status::IoError("injected fault: operation " + std::to_string(op) +
                           " failed");
  }
  const std::uint64_t size = Size();
  if (offset > size || n > size - offset) {
    return Status::Truncated("read past end of (truncated) source");
  }
  if (spec_.short_read_op >= 0 &&
      op == static_cast<std::uint64_t>(spec_.short_read_op) && n > 0) {
    // Deliver half the window, then report the stream ending early — what a
    // positioned read against a concurrently shrinking file produces.
    const Status partial = base_.ReadAt(offset, n / 2, out);
    if (!partial.ok()) return partial;
    return Status::Truncated("injected short read at operation " +
                             std::to_string(op));
  }
  QDCBIR_RETURN_IF_ERROR(base_.ReadAt(offset, n, out));
  if (spec_.flip_offset >= 0) {
    const std::uint64_t flip = static_cast<std::uint64_t>(spec_.flip_offset);
    if (flip >= offset && flip - offset < n) {
      out[flip - offset] = static_cast<char>(
          static_cast<unsigned char>(out[flip - offset]) ^ spec_.flip_mask);
    }
  }
  return Status::Ok();
}

std::string TruncateAt(const std::string& bytes, std::size_t n) {
  return bytes.substr(0, std::min(n, bytes.size()));
}

std::string FlipBit(const std::string& bytes, std::size_t offset, int bit) {
  std::string out = bytes;
  out.at(offset) = static_cast<char>(static_cast<unsigned char>(out[offset]) ^
                                     (1u << (bit & 7)));
  return out;
}

std::vector<std::size_t> SampleOffsets(Rng& rng, std::size_t size,
                                       std::size_t count) {
  std::vector<std::size_t> offsets;
  if (size == 0) return offsets;
  offsets = rng.SampleWithoutReplacement(size, std::min(count, size));
  std::sort(offsets.begin(), offsets.end());
  return offsets;
}

}  // namespace testsupport
}  // namespace qdcbir
