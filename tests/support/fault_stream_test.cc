#include "support/fault_stream.h"

#include <string>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

using testsupport::FaultInjectingSource;
using testsupport::FaultSpec;

std::string ReadWindow(const ByteSource& src, std::uint64_t offset,
                       std::size_t n, Status* status) {
  std::string out(n, '\0');
  *status = src.ReadAt(offset, n, out.data());
  return out;
}

TEST(FaultStreamTest, PassesThroughWithoutFaults) {
  const std::string bytes = "abcdefghij";
  MemoryByteSource base(bytes);
  FaultInjectingSource src(base, FaultSpec{});
  EXPECT_EQ(src.Size(), bytes.size());
  Status status;
  EXPECT_EQ(ReadWindow(src, 2, 5, &status), "cdefg");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(src.ops(), 1u);
}

TEST(FaultStreamTest, TruncationShrinksSizeAndFailsReadsPastIt) {
  const std::string bytes = "abcdefghij";
  MemoryByteSource base(bytes);
  FaultSpec spec;
  spec.truncate_at = 4;
  FaultInjectingSource src(base, spec);
  EXPECT_EQ(src.Size(), 4u);
  Status status;
  EXPECT_EQ(ReadWindow(src, 0, 4, &status), "abcd");
  EXPECT_TRUE(status.ok());
  ReadWindow(src, 2, 3, &status);
  EXPECT_EQ(status.code(), StatusCode::kTruncated);
}

TEST(FaultStreamTest, FlipsExactlyTheRequestedBit) {
  const std::string bytes = "abcdefghij";
  MemoryByteSource base(bytes);
  FaultSpec spec;
  spec.flip_offset = 3;  // 'd'
  spec.flip_mask = 0x01;
  FaultInjectingSource src(base, spec);
  Status status;
  EXPECT_EQ(ReadWindow(src, 0, 10, &status), "abceefghij");  // 'd'^1 = 'e'
  EXPECT_TRUE(status.ok());
  // A window not covering the flip offset is untouched.
  EXPECT_EQ(ReadWindow(src, 4, 3, &status), "efg");
  // A window starting exactly at the flip offset is hit at index 0.
  EXPECT_EQ(ReadWindow(src, 3, 2, &status), "ee");
}

TEST(FaultStreamTest, FailsExactlyTheNthOperation) {
  const std::string bytes = "abcdefghij";
  MemoryByteSource base(bytes);
  FaultSpec spec;
  spec.fail_op = 2;
  FaultInjectingSource src(base, spec);
  Status status;
  ReadWindow(src, 0, 1, &status);
  EXPECT_TRUE(status.ok());
  ReadWindow(src, 0, 1, &status);
  EXPECT_TRUE(status.ok());
  ReadWindow(src, 0, 1, &status);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ReadWindow(src, 0, 1, &status);
  EXPECT_TRUE(status.ok()) << "fault must fire exactly once";
  EXPECT_EQ(src.ops(), 4u);
}

TEST(FaultStreamTest, ShortReadDeliversHalfThenReportsTruncated) {
  const std::string bytes = "abcdefghij";
  MemoryByteSource base(bytes);
  FaultSpec spec;
  spec.short_read_op = 0;
  FaultInjectingSource src(base, spec);
  Status status;
  const std::string got = ReadWindow(src, 0, 8, &status);
  EXPECT_EQ(status.code(), StatusCode::kTruncated);
  EXPECT_EQ(got.substr(0, 4), "abcd");
}

TEST(FaultStreamTest, SampleOffsetsIsSeededAndInRange) {
  Rng a(42), b(42), c(43);
  const auto s1 = testsupport::SampleOffsets(a, 1000, 20);
  const auto s2 = testsupport::SampleOffsets(b, 1000, 20);
  const auto s3 = testsupport::SampleOffsets(c, 1000, 20);
  EXPECT_EQ(s1, s2) << "equal seeds must give equal probe points";
  EXPECT_NE(s1, s3);
  ASSERT_EQ(s1.size(), 20u);
  for (const std::size_t off : s1) EXPECT_LT(off, 1000u);
  for (std::size_t i = 1; i < s1.size(); ++i) EXPECT_LT(s1[i - 1], s1[i]);
}

}  // namespace
}  // namespace qdcbir
