// Randomized property tests of the R*-tree: long mixed insert/delete
// workloads with invariant checks and brute-force result comparison at
// every step boundary. Failures print the seed for replay.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/index/rstar_tree.h"

namespace qdcbir {
namespace {

struct FuzzConfig {
  std::uint64_t seed;
  std::size_t dim;
  std::size_t max_entries;
  std::size_t min_entries;
  int operations;
};

class RStarFuzzTest : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(RStarFuzzTest, MixedWorkloadKeepsInvariantsAndAnswers) {
  const FuzzConfig config = GetParam();
  Rng rng(config.seed);

  RStarTreeOptions options;
  options.max_entries = config.max_entries;
  options.min_entries = config.min_entries;
  RStarTree tree(config.dim, options);

  // Reference state: id -> point.
  std::map<ImageId, FeatureVector> reference;
  ImageId next_id = 0;

  auto random_point = [&] {
    FeatureVector p(config.dim);
    for (std::size_t d = 0; d < config.dim; ++d) {
      p[d] = rng.UniformDouble(-50.0, 50.0);
    }
    return p;
  };

  for (int op = 0; op < config.operations; ++op) {
    const bool do_insert =
        reference.empty() || rng.UniformDouble() < 0.65;
    if (do_insert) {
      const FeatureVector p = random_point();
      const ImageId id = next_id++;
      ASSERT_TRUE(tree.Insert(p, id).ok()) << "seed " << config.seed;
      reference.emplace(id, p);
    } else {
      // Delete a random existing entry.
      const std::size_t pick = rng.UniformInt(reference.size());
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(pick));
      ASSERT_TRUE(tree.Delete(it->second, it->first).ok())
          << "seed " << config.seed << " op " << op;
      reference.erase(it);
    }

    if (op % 50 == 49 || op == config.operations - 1) {
      ASSERT_EQ(tree.size(), reference.size()) << "seed " << config.seed;
      const Status invariants = tree.CheckInvariants();
      ASSERT_TRUE(invariants.ok())
          << "seed " << config.seed << " op " << op << ": "
          << invariants.ToString();

      if (!reference.empty()) {
        // k-NN must agree with a brute-force scan of the reference.
        const FeatureVector q = random_point();
        const std::size_t k = 1 + rng.UniformInt(10);
        std::vector<double> expected;
        for (const auto& [id, p] : reference) {
          expected.push_back(SquaredL2(p, q));
        }
        std::sort(expected.begin(), expected.end());
        expected.resize(std::min(k, expected.size()));
        const auto actual = tree.KnnSearch(q, k);
        ASSERT_EQ(actual.size(), expected.size()) << "seed " << config.seed;
        for (std::size_t i = 0; i < actual.size(); ++i) {
          ASSERT_NEAR(actual[i].distance_squared, expected[i], 1e-9)
              << "seed " << config.seed << " op " << op;
        }

        // Range query agrees too.
        std::vector<double> lo(config.dim), hi(config.dim);
        for (std::size_t d = 0; d < config.dim; ++d) {
          const double a = rng.UniformDouble(-50.0, 50.0);
          const double b = rng.UniformDouble(-50.0, 50.0);
          lo[d] = std::min(a, b);
          hi[d] = std::max(a, b);
        }
        const Rect range(lo, hi);
        std::set<ImageId> expected_ids;
        for (const auto& [id, p] : reference) {
          if (range.ContainsPoint(p)) expected_ids.insert(id);
        }
        const auto found = tree.RangeSearch(range);
        const std::set<ImageId> actual_ids(found.begin(), found.end());
        ASSERT_EQ(actual_ids, expected_ids) << "seed " << config.seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RStarFuzzTest,
    ::testing::Values(FuzzConfig{1, 2, 8, 3, 600},
                      FuzzConfig{2, 4, 8, 3, 600},
                      FuzzConfig{3, 2, 16, 6, 600},
                      FuzzConfig{4, 8, 10, 4, 400},
                      FuzzConfig{5, 3, 6, 2, 800},
                      FuzzConfig{6, 5, 12, 5, 500}),
    [](const ::testing::TestParamInfo<FuzzConfig>& info) {
      return "seed" + std::to_string(info.param.seed) + "_dim" +
             std::to_string(info.param.dim) + "_cap" +
             std::to_string(info.param.max_entries);
    });

}  // namespace
}  // namespace qdcbir
