#include "qdcbir/index/rect.h"

#include <cmath>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(RectTest, PointRectIsDegenerate) {
  const Rect r(FeatureVector{1.0, 2.0, 3.0});
  EXPECT_EQ(r.dim(), 3u);
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Margin(), 0.0);
  EXPECT_EQ(r.Diagonal(), 0.0);
  EXPECT_TRUE(r.ContainsPoint(FeatureVector{1.0, 2.0, 3.0}));
}

TEST(RectTest, AreaMarginDiagonal) {
  const Rect r({0.0, 0.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_DOUBLE_EQ(r.Diagonal(), 5.0);
}

TEST(RectTest, OverlapOfIntersectingRects) {
  const Rect a({0.0, 0.0}, {4.0, 4.0});
  const Rect b({2.0, 2.0}, {6.0, 6.0});
  EXPECT_DOUBLE_EQ(a.Overlap(b), 4.0);
  EXPECT_DOUBLE_EQ(b.Overlap(a), 4.0);
}

TEST(RectTest, OverlapOfDisjointRectsIsZero) {
  const Rect a({0.0, 0.0}, {1.0, 1.0});
  const Rect b({2.0, 2.0}, {3.0, 3.0});
  EXPECT_EQ(a.Overlap(b), 0.0);
  EXPECT_FALSE(a.Intersects(b));
}

TEST(RectTest, TouchingRectsIntersectWithZeroOverlap) {
  const Rect a({0.0, 0.0}, {1.0, 1.0});
  const Rect b({1.0, 0.0}, {2.0, 1.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Overlap(b), 0.0);
}

TEST(RectTest, EnlargementComputesAreaGrowth) {
  const Rect a({0.0, 0.0}, {2.0, 2.0});
  const Rect b({3.0, 0.0}, {4.0, 1.0});
  // Union is [0,4]x[0,2] with area 8; a's area is 4.
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 4.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(RectTest, ContainsAndContainsPoint) {
  const Rect outer({0.0, 0.0}, {10.0, 10.0});
  const Rect inner({2.0, 2.0}, {5.0, 5.0});
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_TRUE(outer.ContainsPoint(FeatureVector{10.0, 0.0}));  // boundary
  EXPECT_FALSE(outer.ContainsPoint(FeatureVector{10.1, 0.0}));
}

TEST(RectTest, ExtendGrowsToCover) {
  Rect r({0.0, 0.0}, {1.0, 1.0});
  r.Extend(Rect({-1.0, 2.0}, {0.5, 3.0}));
  EXPECT_EQ(r, Rect({-1.0, 0.0}, {1.0, 3.0}));
}

TEST(RectTest, ExtendFromEmptyAdoptsOther) {
  Rect r;
  r.Extend(Rect({1.0, 2.0}, {3.0, 4.0}));
  EXPECT_EQ(r, Rect({1.0, 2.0}, {3.0, 4.0}));
}

TEST(RectTest, UnionIsCommutative) {
  const Rect a({0.0, 0.0}, {1.0, 1.0});
  const Rect b({5.0, -2.0}, {6.0, 0.5});
  EXPECT_EQ(Rect::Union(a, b), Rect::Union(b, a));
}

TEST(RectTest, CenterIsMidpoint) {
  const Rect r({0.0, 2.0}, {4.0, 6.0});
  const FeatureVector c = r.Center();
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(RectTest, MinDistZeroInside) {
  const Rect r({0.0, 0.0}, {4.0, 4.0});
  EXPECT_EQ(r.MinDistSquared(FeatureVector{2.0, 2.0}), 0.0);
  EXPECT_EQ(r.MinDistSquared(FeatureVector{0.0, 4.0}), 0.0);  // boundary
}

TEST(RectTest, MinDistToOutsidePoint) {
  const Rect r({0.0, 0.0}, {4.0, 4.0});
  // Point (7, 8): dx = 3, dy = 4 -> squared distance 25.
  EXPECT_DOUBLE_EQ(r.MinDistSquared(FeatureVector{7.0, 8.0}), 25.0);
  // Point left of the rect: only x contributes.
  EXPECT_DOUBLE_EQ(r.MinDistSquared(FeatureVector{-2.0, 2.0}), 4.0);
}

TEST(RectTest, HighDimensionalOperations) {
  const std::size_t dim = 37;
  std::vector<double> lo(dim, 0.0), hi(dim, 1.0);
  const Rect r(lo, hi);
  EXPECT_DOUBLE_EQ(r.Area(), 1.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 37.0);
  EXPECT_NEAR(r.Diagonal(), std::sqrt(37.0), 1e-12);
}

}  // namespace
}  // namespace qdcbir
