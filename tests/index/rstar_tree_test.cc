#include "qdcbir/index/rstar_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> RandomPoints(std::size_t n, std::size_t dim,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.UniformDouble(-10.0, 10.0);
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<KnnMatch> BruteKnn(const std::vector<FeatureVector>& points,
                               const FeatureVector& q, std::size_t k) {
  std::vector<KnnMatch> all;
  for (std::size_t i = 0; i < points.size(); ++i) {
    all.push_back(KnnMatch{static_cast<ImageId>(i), SquaredL2(points[i], q)});
  }
  std::sort(all.begin(), all.end(), [](const KnnMatch& a, const KnnMatch& b) {
    return a.distance_squared < b.distance_squared;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

RStarTreeOptions SmallNodes() {
  RStarTreeOptions options;
  options.max_entries = 8;
  options.min_entries = 3;
  return options;
}

TEST(RStarOptionsTest, Validation) {
  RStarTreeOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.max_entries = 2;
  EXPECT_FALSE(options.Validate().ok());
  options = RStarTreeOptions();
  options.min_entries = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = RStarTreeOptions();
  options.min_entries = options.max_entries + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = RStarTreeOptions();
  options.reinsert_fraction = 0.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree(2, SmallNodes());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.KnnSearch(FeatureVector{0.0, 0.0}, 5).empty());
}

TEST(RStarTreeTest, InsertRejectsWrongDimAndInvalidId) {
  RStarTree tree(2, SmallNodes());
  EXPECT_FALSE(tree.Insert(FeatureVector{1.0}, 0).ok());
  EXPECT_FALSE(tree.Insert(FeatureVector{1.0, 2.0}, kInvalidImageId).ok());
}

TEST(RStarTreeTest, SmallInsertAndExactSearch) {
  RStarTree tree(2, SmallNodes());
  const auto points = RandomPoints(5, 2, 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_EQ(tree.height(), 1);  // fits in the root leaf
  const auto matches = tree.KnnSearch(points[3], 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 3u);
  EXPECT_EQ(matches[0].distance_squared, 0.0);
}

TEST(RStarTreeTest, GrowsAndKeepsInvariants) {
  RStarTree tree(3, SmallNodes());
  const auto points = RandomPoints(300, 3, 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString() << " at insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

class KnnEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KnnEquivalenceTest, KnnMatchesBruteForce) {
  const auto [n, dim, k] = GetParam();
  const auto points = RandomPoints(n, dim, 42 + n + dim);
  RStarTree tree(dim, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  Rng rng(7);
  for (int q = 0; q < 10; ++q) {
    FeatureVector query(dim);
    for (int d = 0; d < dim; ++d) query[d] = rng.UniformDouble(-12.0, 12.0);
    const auto expected = BruteKnn(points, query, k);
    const auto actual = tree.KnnSearch(query, k);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      // Ids may differ on exact distance ties; distances must match.
      EXPECT_NEAR(actual[i].distance_squared, expected[i].distance_squared,
                  1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnEquivalenceTest,
    ::testing::Values(std::make_tuple(50, 2, 5), std::make_tuple(200, 2, 10),
                      std::make_tuple(200, 8, 10), std::make_tuple(500, 4, 25),
                      std::make_tuple(300, 16, 7),
                      std::make_tuple(1000, 3, 50)));

TEST(RStarTreeTest, RangeSearchMatchesLinearScan) {
  const auto points = RandomPoints(400, 3, 9);
  RStarTree tree(3, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  const Rect range({-3.0, -3.0, -3.0}, {3.0, 3.0, 3.0});
  std::set<ImageId> expected;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (range.ContainsPoint(points[i])) {
      expected.insert(static_cast<ImageId>(i));
    }
  }
  const auto found = tree.RangeSearch(range);
  const std::set<ImageId> actual(found.begin(), found.end());
  EXPECT_EQ(actual, expected);
}

TEST(RStarTreeTest, KnnWithKLargerThanSize) {
  const auto points = RandomPoints(10, 2, 11);
  RStarTree tree(2, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  EXPECT_EQ(tree.KnnSearch(FeatureVector{0.0, 0.0}, 100).size(), 10u);
}

TEST(RStarTreeTest, KnnResultsSortedAscending) {
  const auto points = RandomPoints(150, 4, 13);
  RStarTree tree(4, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  const auto matches = tree.KnnSearch(points[0], 20);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].distance_squared, matches[i].distance_squared);
  }
}

TEST(RStarTreeTest, SubtreeSearchOnlySeesSubtree) {
  const auto points = RandomPoints(400, 2, 15);
  RStarTree tree(2, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  // Pick a child of the root; every result must come from its subtree.
  const auto& root = tree.node(tree.root());
  ASSERT_FALSE(root.IsLeaf());
  const NodeId child = root.entries.front().child;
  const auto members = tree.CollectSubtree(child);
  const std::set<ImageId> member_set(members.begin(), members.end());
  const auto matches =
      tree.KnnSearchInSubtree(child, FeatureVector{0.0, 0.0}, 50);
  EXPECT_FALSE(matches.empty());
  for (const KnnMatch& m : matches) {
    EXPECT_TRUE(member_set.count(m.id) > 0);
  }
}

TEST(RStarTreeTest, CollectSubtreeFromRootReturnsAll) {
  const auto points = RandomPoints(120, 2, 17);
  RStarTree tree(2, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  const auto all = tree.CollectSubtree(tree.root());
  EXPECT_EQ(all.size(), 120u);
  const std::set<ImageId> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 120u);
}

TEST(RStarTreeTest, NodesByLevelPartitionsNodes) {
  const auto points = RandomPoints(300, 3, 19);
  RStarTree tree(3, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  const auto levels = tree.NodesByLevel();
  EXPECT_EQ(static_cast<int>(levels.size()), tree.height());
  EXPECT_EQ(levels.back().size(), 1u);  // root level
  for (std::size_t level = 0; level < levels.size(); ++level) {
    for (const NodeId id : levels[level]) {
      EXPECT_EQ(tree.node(id).level, static_cast<int>(level));
    }
  }
}

TEST(RStarTreeTest, DeleteRemovesAndKeepsInvariants) {
  const auto points = RandomPoints(200, 2, 21);
  RStarTree tree(2, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  // Delete half the points.
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Delete(points[i], static_cast<ImageId>(i)).ok())
        << "delete " << i;
    if (i % 25 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // Deleted points are gone; the rest are findable.
  EXPECT_FALSE(tree.Delete(points[0], 0).ok());
  const auto matches = tree.KnnSearch(points[150], 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 150u);
}

TEST(RStarTreeTest, DeleteToEmpty) {
  const auto points = RandomPoints(50, 2, 23);
  RStarTree tree(2, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Delete(points[i], static_cast<ImageId>(i)).ok());
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.KnnSearch(FeatureVector{0.0, 0.0}, 5).empty());
}

TEST(RStarTreeTest, DeleteNotFound) {
  RStarTree tree(2, SmallNodes());
  ASSERT_TRUE(tree.Insert(FeatureVector{1.0, 1.0}, 7).ok());
  EXPECT_EQ(tree.Delete(FeatureVector{2.0, 2.0}, 7).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(FeatureVector{1.0, 1.0}, 8).code(),
            StatusCode::kNotFound);
}

TEST(RStarTreeTest, DuplicatePointsAreSupported) {
  RStarTree tree(2, SmallNodes());
  const FeatureVector p{1.0, 1.0};
  for (ImageId id = 0; id < 30; ++id) {
    ASSERT_TRUE(tree.Insert(p, id).ok());
  }
  EXPECT_EQ(tree.size(), 30u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.KnnSearch(p, 30).size(), 30u);
}

TEST(RStarTreeTest, StatsReflectStructure) {
  const auto points = RandomPoints(300, 2, 25);
  RStarTree tree(2, SmallNodes());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  const RStarTree::Stats stats = tree.ComputeStats();
  EXPECT_EQ(stats.height, tree.height());
  EXPECT_GT(stats.leaf_count, 0u);
  EXPECT_GE(stats.node_count, stats.leaf_count);
  EXPECT_GT(stats.avg_leaf_occupancy, 0.3);
  EXPECT_LE(stats.avg_leaf_occupancy, 1.0);
}

TEST(RStarTreeTest, PaperNodeCapacityConfiguration) {
  // The paper's 70..100 node size: the split minimum clamps internally.
  RStarTreeOptions options;
  options.max_entries = 100;
  options.min_entries = 70;
  ASSERT_TRUE(options.Validate().ok());
  const auto points = RandomPoints(1000, 4, 27);
  RStarTree tree(4, options);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(points[i], static_cast<ImageId>(i)).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_GE(tree.height(), 2);
}

}  // namespace
}  // namespace qdcbir
