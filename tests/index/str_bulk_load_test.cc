#include "qdcbir/index/str_bulk_load.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> RandomPoints(std::size_t n, std::size_t dim,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.UniformDouble(0.0, 100.0);
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<ImageId> Iota(std::size_t n) {
  std::vector<ImageId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<ImageId>(i);
  return ids;
}

TEST(BulkLoadTest, RejectsBadInputs) {
  EXPECT_FALSE(BulkLoadRStarTree({}, {}, 2).ok());
  const auto points = RandomPoints(5, 2, 1);
  EXPECT_FALSE(BulkLoadRStarTree(points, Iota(4), 2).ok());
  EXPECT_FALSE(BulkLoadRStarTree(points, Iota(5), 3).ok());
  EXPECT_FALSE(
      BulkLoadRStarTree(points, Iota(5), 2, RStarTreeOptions(), 0.0).ok());
  EXPECT_FALSE(
      BulkLoadRStarTree(points, Iota(5), 2, RStarTreeOptions(), 1.5).ok());
}

TEST(BulkLoadTest, SinglePoint) {
  const std::vector<FeatureVector> points = {FeatureVector{1.0, 2.0}};
  const RStarTree tree =
      BulkLoadRStarTree(points, {42}, 2).value();
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const auto matches = tree.KnnSearch(points[0], 1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 42u);
}

class BulkLoadSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(BulkLoadSizeTest, InvariantsAndCompleteness) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const auto points = RandomPoints(n, 5, 100 + n);
  RStarTreeOptions options;
  options.max_entries = 16;
  options.min_entries = 6;
  const RStarTree tree =
      BulkLoadRStarTree(points, Iota(n), 5, options).value();
  EXPECT_EQ(tree.size(), n);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  const auto all = tree.CollectSubtree(tree.root());
  EXPECT_EQ(std::set<ImageId>(all.begin(), all.end()).size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSizeTest,
                         ::testing::Values(1, 2, 15, 16, 17, 100, 257, 1000));

TEST(BulkLoadTest, KnnMatchesBruteForce) {
  const auto points = RandomPoints(600, 6, 31);
  const RStarTree tree = BulkLoadRStarTree(points, Iota(600), 6).value();
  Rng rng(5);
  for (int q = 0; q < 10; ++q) {
    FeatureVector query(6);
    for (int d = 0; d < 6; ++d) query[d] = rng.UniformDouble(0.0, 100.0);
    const auto actual = tree.KnnSearch(query, 15);
    // Brute-force comparison.
    std::vector<double> dists;
    for (const auto& p : points) dists.push_back(SquaredL2(p, query));
    std::sort(dists.begin(), dists.end());
    ASSERT_EQ(actual.size(), 15u);
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_NEAR(actual[i].distance_squared, dists[i], 1e-9);
    }
  }
}

TEST(BulkLoadTest, ProducesHighOccupancy) {
  const auto points = RandomPoints(2000, 4, 37);
  RStarTreeOptions options;
  options.max_entries = 50;
  options.min_entries = 20;
  const RStarTree tree =
      BulkLoadRStarTree(points, Iota(2000), 4, options, 0.85).value();
  const RStarTree::Stats stats = tree.ComputeStats();
  EXPECT_GT(stats.avg_leaf_occupancy, 0.6);
}

TEST(BulkLoadTest, TreeSupportsSubsequentInsertsAndDeletes) {
  auto points = RandomPoints(200, 3, 41);
  RStarTreeOptions options;
  options.max_entries = 10;
  options.min_entries = 4;
  RStarTree tree = BulkLoadRStarTree(points, Iota(200), 3, options).value();

  // Mixed workload on top of the bulk-loaded structure.
  const auto extra = RandomPoints(100, 3, 43);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(tree.Insert(extra[i], static_cast<ImageId>(200 + i)).ok());
  }
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Delete(points[i], static_cast<ImageId>(i)).ok());
  }
  EXPECT_EQ(tree.size(), 250u);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

TEST(BulkLoadTest, PaperScaleConfiguration) {
  // 15k points with the paper's 70..100 node capacity builds a shallow tree
  // (the paper reports 3 levels at this scale).
  const auto points = RandomPoints(5000, 8, 47);
  RStarTreeOptions options;
  options.max_entries = 100;
  options.min_entries = 70;
  const RStarTree tree =
      BulkLoadRStarTree(points, Iota(5000), 8, options).value();
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_LE(tree.height(), 3);
}

}  // namespace
}  // namespace qdcbir
