#include "qdcbir/dataset/recipe.h"

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/image/color.h"

namespace qdcbir {
namespace {

TEST(RecipeTest, RendersRequestedSize) {
  SubConceptRecipe recipe;
  Rng rng(1);
  const Image img = RenderRecipe(recipe, 48, 32, rng);
  EXPECT_EQ(img.width(), 48);
  EXPECT_EQ(img.height(), 32);
}

TEST(RecipeTest, DeterministicGivenRngState) {
  SubConceptRecipe recipe;
  recipe.texture = TextureKind::kSpeckle;
  Rng a(77), b(77);
  const Image img_a = RenderRecipe(recipe, 32, 32, a);
  const Image img_b = RenderRecipe(recipe, 32, 32, b);
  EXPECT_TRUE(img_a == img_b);
}

TEST(RecipeTest, DifferentRngStatesJitter) {
  SubConceptRecipe recipe;
  Rng a(1), b(2);
  const Image img_a = RenderRecipe(recipe, 32, 32, a);
  const Image img_b = RenderRecipe(recipe, 32, 32, b);
  EXPECT_FALSE(img_a == img_b);
}

TEST(RecipeTest, ShapeColorAppears) {
  SubConceptRecipe recipe;
  recipe.background = BackgroundKind::kSolid;
  recipe.bg_color1 = Rgb{0, 0, 0};
  recipe.shape = ShapeKind::kEllipse;
  recipe.shape_color = Rgb{255, 0, 0};
  recipe.jitter_hue = 0.0;
  recipe.pixel_noise_stddev = 0.0;
  Rng rng(3);
  const Image img = RenderRecipe(recipe, 32, 32, rng);
  // The center of the canvas is covered by the red ellipse.
  const Rgb center = img.At(16, 16);
  EXPECT_GT(center.r, 200);
  EXPECT_LT(center.g, 50);
}

TEST(RecipeTest, MultipleShapesSpread) {
  SubConceptRecipe one;
  one.pixel_noise_stddev = 0.0;
  SubConceptRecipe many = one;
  many.shape_count = 4;
  Rng ra(5), rb(5);
  const Image img_one = RenderRecipe(one, 48, 48, ra);
  const Image img_many = RenderRecipe(many, 48, 48, rb);
  EXPECT_FALSE(img_one == img_many);
}

TEST(RecipeTest, AllShapeKindsRenderWithoutCrash) {
  for (const ShapeKind kind :
       {ShapeKind::kEllipse, ShapeKind::kRectangle, ShapeKind::kTriangle,
        ShapeKind::kPolygon, ShapeKind::kLineBurst}) {
    SubConceptRecipe recipe;
    recipe.shape = kind;
    Rng rng(7);
    const Image img = RenderRecipe(recipe, 24, 24, rng);
    EXPECT_FALSE(img.empty());
  }
}

TEST(RecipeTest, AllBackgroundKindsRender) {
  for (const BackgroundKind kind :
       {BackgroundKind::kSolid, BackgroundKind::kVerticalGradient,
        BackgroundKind::kHorizontalGradient, BackgroundKind::kNoisy}) {
    SubConceptRecipe recipe;
    recipe.background = kind;
    Rng rng(9);
    const Image img = RenderRecipe(recipe, 24, 24, rng);
    EXPECT_FALSE(img.empty());
  }
}

TEST(RecipeTest, AllTextureKindsRender) {
  for (const TextureKind kind :
       {TextureKind::kNone, TextureKind::kChecker, TextureKind::kStripes,
        TextureKind::kSpeckle}) {
    SubConceptRecipe recipe;
    recipe.texture = kind;
    Rng rng(11);
    const Image img = RenderRecipe(recipe, 24, 24, rng);
    EXPECT_FALSE(img.empty());
  }
}

TEST(RecipeTest, JitterHuePreservesColorWhenZero) {
  Rng rng(13);
  const Rgb c = JitterHue(Rgb{120, 60, 200}, 0.0, rng);
  EXPECT_EQ(c, (Rgb{120, 60, 200}));
}

TEST(RecipeTest, SameRecipeImagesClusterInFeatureSpace) {
  // The core dataset premise: two renders of one recipe are much closer in
  // feature space than renders of different recipes.
  SubConceptRecipe red_circle;
  red_circle.shape_color = Rgb{220, 40, 40};
  SubConceptRecipe blue_square = red_circle;
  blue_square.shape = ShapeKind::kRectangle;
  blue_square.shape_color = Rgb{40, 40, 220};
  blue_square.background = BackgroundKind::kVerticalGradient;
  blue_square.bg_color2 = Rgb{200, 200, 100};

  FeatureExtractor extractor;
  Rng rng(15);
  const FeatureVector a1 =
      extractor.Extract(RenderRecipe(red_circle, 48, 48, rng)).value();
  const FeatureVector a2 =
      extractor.Extract(RenderRecipe(red_circle, 48, 48, rng)).value();
  const FeatureVector b1 =
      extractor.Extract(RenderRecipe(blue_square, 48, 48, rng)).value();

  EXPECT_LT(SquaredL2(a1, a2) * 4.0, SquaredL2(a1, b1));
}

}  // namespace
}  // namespace qdcbir
