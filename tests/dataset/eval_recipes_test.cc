// Property tests of the hand-crafted evaluation categories: the dataset's
// whole purpose is that sub-concepts of one semantic concept are (a)
// internally tight and (b) mutually distant in feature space. These tests
// pin that property for the concepts the paper's queries depend on.

#include <cmath>

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/dataset/catalog.h"
#include "qdcbir/features/extractor.h"

namespace qdcbir {
namespace {

class EvalRecipesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(Catalog::Build().value());
  }
  static void TearDownTestSuite() { delete catalog_; }

  /// Renders `n` images of a sub-concept and extracts raw features.
  static std::vector<FeatureVector> Sample(const char* name, int n,
                                           std::uint64_t seed) {
    const SubConceptSpec& spec =
        catalog_->subconcept(catalog_->FindSubConcept(name).value());
    FeatureExtractor extractor;
    Rng rng(seed);
    std::vector<FeatureVector> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(
          extractor.Extract(RenderRecipe(spec.recipe, 48, 48, rng)).value());
    }
    return out;
  }

  /// Mean distance of the samples to their centroid.
  static double Radius(const std::vector<FeatureVector>& samples) {
    const FeatureVector c = FeatureVector::Centroid(samples);
    double sum = 0.0;
    for (const FeatureVector& s : samples) {
      sum += std::sqrt(SquaredL2(s, c));
    }
    return sum / static_cast<double>(samples.size());
  }

  static double CentroidDistance(const std::vector<FeatureVector>& a,
                                 const std::vector<FeatureVector>& b) {
    return std::sqrt(SquaredL2(FeatureVector::Centroid(a),
                               FeatureVector::Centroid(b)));
  }

  static const Catalog* catalog_;
};

const Catalog* EvalRecipesTest::catalog_ = nullptr;

struct ConceptPair {
  const char* a;
  const char* b;
};

class ScatteredPairTest : public EvalRecipesTest,
                          public ::testing::WithParamInterface<ConceptPair> {};

TEST_P(ScatteredPairTest, SubconceptsAreTightAndMutuallyDistant) {
  const ConceptPair pair = GetParam();
  const auto sa = Sample(pair.a, 12, 1);
  const auto sb = Sample(pair.b, 12, 2);
  const double ra = Radius(sa);
  const double rb = Radius(sb);
  const double d = CentroidDistance(sa, sb);
  // The inter-centroid distance clearly exceeds both cluster radii — the
  // clusters do not overlap (Figure 1's geometry, in raw feature space).
  EXPECT_GT(d, 1.5 * (ra + rb))
      << pair.a << " vs " << pair.b << ": radius " << ra << "/" << rb
      << ", distance " << d;
}

INSTANTIATE_TEST_SUITE_P(
    EvaluationConcepts, ScatteredPairTest,
    ::testing::Values(
        // The bird query's three scattered sub-concepts (Figure 3).
        ConceptPair{"eagle", "owl"}, ConceptPair{"eagle", "sparrow"},
        ConceptPair{"owl", "sparrow"},
        // The car query (Figure 2's walk-through).
        ConceptPair{"modern_sedan", "antique_car"},
        ConceptPair{"modern_sedan", "steamed_car"},
        // The person query (largest QD-vs-MV gap in Table 1).
        ConceptPair{"hair_model", "kongfu"},
        ConceptPair{"fitness", "hair_model"},
        // The computer family (Figures 4-9).
        ConceptPair{"server", "laptop_clear"},
        ConceptPair{"desktop", "laptop_complex"},
        ConceptPair{"laptop_clear", "laptop_complex"},
        // Figure 1's white-sedan views.
        ConceptPair{"white_sedan_side", "white_sedan_angle"},
        ConceptPair{"white_sedan_front", "white_sedan_back"}),
    [](const ::testing::TestParamInfo<ConceptPair>& info) {
      return std::string(info.param.a) + "_vs_" + info.param.b;
    });

TEST_F(EvalRecipesTest, AirplaneSubconceptsAreDeliberatelyCloser) {
  // The paper notes MV also captures both airplane sub-concepts because
  // they share a clear-sky background; the dataset preserves that: the
  // airplane pair is much closer (relative to its radii) than the bird
  // pair.
  const auto single = Sample("airplane_single", 12, 3);
  const auto multiple = Sample("airplane_multiple", 12, 4);
  const auto eagle = Sample("eagle", 12, 5);
  const auto owl = Sample("owl", 12, 6);

  const double airplane_ratio =
      CentroidDistance(single, multiple) /
      (Radius(single) + Radius(multiple));
  const double bird_ratio =
      CentroidDistance(eagle, owl) / (Radius(eagle) + Radius(owl));
  EXPECT_LT(airplane_ratio, bird_ratio);
}

TEST_F(EvalRecipesTest, RosesAreBestSeparatedByAColorDimension) {
  // yellow_rose vs red_rose share layout and differ by petal color. Raw
  // feature scales differ per block, so compare per-dimension
  // signal-to-noise: |centroid difference| / pooled within-cluster spread.
  // The single most discriminative dimension must be a color moment.
  const auto yellow = Sample("yellow_rose", 12, 7);
  const auto red = Sample("red_rose", 12, 8);
  const FeatureVector cy = FeatureVector::Centroid(yellow);
  const FeatureVector cr = FeatureVector::Centroid(red);

  auto dim_stddev = [](const std::vector<FeatureVector>& samples,
                       const FeatureVector& centroid, std::size_t d) {
    double sum = 0.0;
    for (const FeatureVector& s : samples) {
      sum += (s[d] - centroid[d]) * (s[d] - centroid[d]);
    }
    return std::sqrt(sum / static_cast<double>(samples.size()));
  };

  std::size_t best_dim = 0;
  double best_snr = -1.0;
  for (std::size_t d = 0; d < kPaperFeatureDim; ++d) {
    const double spread =
        dim_stddev(yellow, cy, d) + dim_stddev(red, cr, d) + 1e-9;
    const double snr = std::fabs(cy[d] - cr[d]) / spread;
    if (snr > best_snr) {
      best_snr = snr;
      best_dim = d;
    }
  }
  EXPECT_LT(best_dim, kPaperLayout.color_end)
      << "most discriminative dimension " << best_dim
      << " is not a color moment (SNR " << best_snr << ")";
}

}  // namespace
}  // namespace qdcbir
