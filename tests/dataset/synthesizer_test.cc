#include "qdcbir/dataset/synthesizer.h"

#include <set>

#include <gtest/gtest.h>

#include "qdcbir/cluster/cluster_stats.h"
#include "qdcbir/core/stats.h"

namespace qdcbir {
namespace {

class SynthesizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 40;
    catalog_ = new Catalog(Catalog::Build(catalog_options).value());
    SynthesizerOptions options;
    options.total_images = 1200;
    options.image_width = 32;
    options.image_height = 32;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(*catalog_, options).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete catalog_;
  }
  static const Catalog* catalog_;
  static const ImageDatabase* db_;
};

const Catalog* SynthesizerTest::catalog_ = nullptr;
const ImageDatabase* SynthesizerTest::db_ = nullptr;

TEST_F(SynthesizerTest, ExactImageCount) {
  EXPECT_EQ(db_->size(), 1200u);
  EXPECT_EQ(db_->records().size(), 1200u);
  EXPECT_EQ(db_->features().size(), 1200u);
}

TEST_F(SynthesizerTest, RejectsBadOptions) {
  SynthesizerOptions options;
  options.total_images = 0;
  EXPECT_FALSE(DatabaseSynthesizer::Synthesize(*catalog_, options).ok());
  options = SynthesizerOptions();
  options.image_width = 4;
  EXPECT_FALSE(DatabaseSynthesizer::Synthesize(*catalog_, options).ok());
}

TEST_F(SynthesizerTest, FeaturesAre37Dimensional) {
  EXPECT_EQ(db_->feature_dim(), kPaperFeatureDim);
}

TEST_F(SynthesizerTest, EverySubconceptHasImages) {
  for (const SubConceptSpec& s : catalog_->subconcepts()) {
    EXPECT_FALSE(db_->ImagesOfSubConcept(s.id).empty()) << s.name;
  }
}

TEST_F(SynthesizerTest, RecordsAreConsistent) {
  for (const ImageRecord& rec : db_->records()) {
    EXPECT_EQ(catalog_->subconcept(rec.subconcept).category, rec.category);
    const auto ids = db_->ImagesOfSubConcept(rec.subconcept);
    EXPECT_NE(std::find(ids.begin(), ids.end(), rec.id), ids.end());
  }
}

TEST_F(SynthesizerTest, FeaturesAreNormalized) {
  for (std::size_t d = 0; d < db_->feature_dim(); ++d) {
    std::vector<double> column;
    for (const FeatureVector& f : db_->features()) column.push_back(f[d]);
    EXPECT_NEAR(Mean(column), 0.0, 1e-6) << "dim " << d;
    const double sd = StdDev(column);
    // Constant dimensions normalize to zero, all others to unit scale.
    EXPECT_TRUE(sd < 1e-6 || std::abs(sd - 1.0) < 1e-6) << "dim " << d;
  }
}

TEST_F(SynthesizerTest, ChannelFeaturesPresentAndDistinct) {
  ASSERT_TRUE(db_->has_channel_features());
  const FeatureVector& original =
      db_->channel_feature(ViewpointChannel::kOriginal, 0);
  const FeatureVector& gray = db_->channel_feature(ViewpointChannel::kGray, 0);
  EXPECT_EQ(original.dim(), gray.dim());
  EXPECT_FALSE(original == gray);
}

TEST_F(SynthesizerTest, RenderIsDeterministic) {
  const Image a = db_->Render(5);
  const Image b = db_->Render(5);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.width(), 32);
}

TEST_F(SynthesizerTest, LabelsAreHumanReadable) {
  const std::string label = db_->LabelOf(0);
  EXPECT_NE(label.find('/'), std::string::npos);
}

TEST_F(SynthesizerTest, SubconceptsFormSeparatedClusters) {
  // The dataset reproduces the paper's premise: sub-concepts cluster.
  std::vector<int> labels;
  labels.reserve(db_->size());
  for (const ImageRecord& rec : db_->records()) {
    labels.push_back(static_cast<int>(rec.subconcept));
  }
  const ClusterSeparationStats stats =
      ComputeSeparation(db_->features(), labels);
  EXPECT_GT(stats.mean_inter_centroid_dist,
            3.0 * stats.mean_intra_radius);
}

TEST_F(SynthesizerTest, DeterministicAcrossRuns) {
  SynthesizerOptions options;
  options.total_images = 100;
  options.image_width = 24;
  options.image_height = 24;
  options.extract_viewpoint_channels = false;
  const ImageDatabase a =
      DatabaseSynthesizer::Synthesize(*catalog_, options).value();
  const ImageDatabase b =
      DatabaseSynthesizer::Synthesize(*catalog_, options).value();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.feature(i), b.feature(i));
  }
}

TEST_F(SynthesizerTest, SubsampleKeepsStratification) {
  const ImageDatabase sub =
      DatabaseSynthesizer::Subsample(*db_, 600).value();
  EXPECT_EQ(sub.size(), 600u);
  // Every sub-concept survives.
  for (const SubConceptSpec& s : catalog_->subconcepts()) {
    EXPECT_FALSE(sub.ImagesOfSubConcept(s.id).empty()) << s.name;
  }
  // Ids are dense and records consistent.
  for (std::size_t i = 0; i < sub.size(); ++i) {
    EXPECT_EQ(sub.record(i).id, i);
  }
}

TEST_F(SynthesizerTest, SubsampleRejectsBadSizes) {
  EXPECT_FALSE(DatabaseSynthesizer::Subsample(*db_, 0).ok());
  EXPECT_FALSE(DatabaseSynthesizer::Subsample(*db_, db_->size() + 1).ok());
}

TEST_F(SynthesizerTest, SubsampleKeepsChannelFeatures) {
  const ImageDatabase sub =
      DatabaseSynthesizer::Subsample(*db_, 300).value();
  EXPECT_TRUE(sub.has_channel_features());
  EXPECT_EQ(sub.channel_features(ViewpointChannel::kGray).size(), 300u);
}

}  // namespace
}  // namespace qdcbir
