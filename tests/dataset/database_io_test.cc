#include "qdcbir/dataset/database_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"

namespace qdcbir {
namespace {

class DatabaseIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 20;
    catalog_ = new Catalog(Catalog::Build(catalog_options).value());
    SynthesizerOptions options;
    options.total_images = 300;
    options.image_width = 24;
    options.image_height = 24;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(*catalog_, options).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete catalog_;
  }
  static const Catalog* catalog_;
  static const ImageDatabase* db_;
};

const Catalog* DatabaseIoTest::catalog_ = nullptr;
const ImageDatabase* DatabaseIoTest::db_ = nullptr;

TEST_F(DatabaseIoTest, CatalogRoundTrip) {
  const std::string blob = DatabaseIo::SerializeCatalog(*catalog_);
  StatusOr<Catalog> restored = DatabaseIo::DeserializeCatalog(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->categories().size(), catalog_->categories().size());
  ASSERT_EQ(restored->subconcepts().size(), catalog_->subconcepts().size());
  ASSERT_EQ(restored->queries().size(), catalog_->queries().size());
  for (std::size_t i = 0; i < catalog_->subconcepts().size(); ++i) {
    const SubConceptSpec& a = catalog_->subconcepts()[i];
    const SubConceptSpec& b = restored->subconcepts()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.recipe.shape, b.recipe.shape);
    EXPECT_EQ(a.recipe.shape_color, b.recipe.shape_color);
    EXPECT_DOUBLE_EQ(a.recipe.shape_size_frac, b.recipe.shape_size_frac);
  }
  for (std::size_t q = 0; q < catalog_->queries().size(); ++q) {
    EXPECT_EQ(restored->queries()[q].name, catalog_->queries()[q].name);
    EXPECT_EQ(restored->queries()[q].AllMembers(),
              catalog_->queries()[q].AllMembers());
  }
}

TEST_F(DatabaseIoTest, DatabaseRoundTrip) {
  const std::string blob = DatabaseIo::SerializeDatabase(*db_);
  StatusOr<ImageDatabase> restored = DatabaseIo::DeserializeDatabase(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->size(), db_->size());
  EXPECT_EQ(restored->image_width(), db_->image_width());
  EXPECT_TRUE(restored->has_channel_features());
  for (ImageId i = 0; i < db_->size(); ++i) {
    EXPECT_EQ(restored->feature(i), db_->feature(i));
    EXPECT_EQ(restored->record(i).subconcept, db_->record(i).subconcept);
    EXPECT_EQ(restored->record(i).render_seed, db_->record(i).render_seed);
    EXPECT_EQ(
        restored->channel_feature(ViewpointChannel::kGray, i),
        db_->channel_feature(ViewpointChannel::kGray, i));
  }
  // Renders reproduce identical pixels.
  EXPECT_TRUE(restored->Render(7) == db_->Render(7));
  // Ground-truth lookups intact.
  for (const SubConceptSpec& s : catalog_->subconcepts()) {
    EXPECT_EQ(restored->ImagesOfSubConcept(s.id),
              db_->ImagesOfSubConcept(s.id));
  }
}

TEST_F(DatabaseIoTest, DatabaseWithoutChannelsRoundTrips) {
  SynthesizerOptions options;
  options.total_images = 80;
  options.image_width = 16;
  options.image_height = 16;
  options.extract_viewpoint_channels = false;
  const ImageDatabase small =
      DatabaseSynthesizer::Synthesize(*catalog_, options).value();
  StatusOr<ImageDatabase> restored =
      DatabaseIo::DeserializeDatabase(DatabaseIo::SerializeDatabase(small));
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->has_channel_features());
  EXPECT_EQ(restored->size(), 80u);
}

TEST_F(DatabaseIoTest, RejectsCorruptBlobs) {
  EXPECT_FALSE(DatabaseIo::DeserializeDatabase("").ok());
  EXPECT_FALSE(DatabaseIo::DeserializeDatabase("XXXXXXXXjunk").ok());
  EXPECT_FALSE(DatabaseIo::DeserializeCatalog("YYYYYYYYjunk").ok());
  std::string blob = DatabaseIo::SerializeDatabase(*db_);
  blob.resize(blob.size() / 3);
  EXPECT_FALSE(DatabaseIo::DeserializeDatabase(blob).ok());
}

TEST_F(DatabaseIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/qdcbir_db_test.bin";
  ASSERT_TRUE(DatabaseIo::SaveDatabase(*db_, path).ok());
  StatusOr<ImageDatabase> loaded = DatabaseIo::LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), db_->size());
  std::remove(path.c_str());
  EXPECT_FALSE(DatabaseIo::LoadDatabase("/nonexistent/db.bin").ok());
}

}  // namespace
}  // namespace qdcbir
