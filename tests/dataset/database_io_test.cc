#include "qdcbir/dataset/database_io.h"

#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"

namespace qdcbir {
namespace {

/// Structural equality deep enough for round-trip checks: every field the
/// format persists, plus derived lookups.
void ExpectDatabasesEqual(const ImageDatabase& a, const ImageDatabase& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.image_width(), b.image_width());
  EXPECT_EQ(a.image_height(), b.image_height());
  EXPECT_EQ(a.has_channel_features(), b.has_channel_features());
  ASSERT_EQ(a.catalog().categories().size(), b.catalog().categories().size());
  ASSERT_EQ(a.catalog().subconcepts().size(),
            b.catalog().subconcepts().size());
  ASSERT_EQ(a.catalog().queries().size(), b.catalog().queries().size());
  for (ImageId i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.feature(i), b.feature(i));
    ASSERT_EQ(a.record(i).subconcept, b.record(i).subconcept);
    ASSERT_EQ(a.record(i).category, b.record(i).category);
    ASSERT_EQ(a.record(i).render_seed, b.record(i).render_seed);
  }
  if (a.has_channel_features()) {
    for (ImageId i = 0; i < a.size(); ++i) {
      for (const ViewpointChannel c :
           {ViewpointChannel::kNegative, ViewpointChannel::kGray,
            ViewpointChannel::kGrayNegative}) {
        ASSERT_EQ(a.channel_feature(c, i), b.channel_feature(c, i));
      }
    }
  }
  for (const SubConceptSpec& s : a.catalog().subconcepts()) {
    EXPECT_EQ(a.ImagesOfSubConcept(s.id), b.ImagesOfSubConcept(s.id));
  }
}

class DatabaseIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 20;
    catalog_ = new Catalog(Catalog::Build(catalog_options).value());
    SynthesizerOptions options;
    options.total_images = 300;
    options.image_width = 24;
    options.image_height = 24;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(*catalog_, options).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete catalog_;
  }
  static const Catalog* catalog_;
  static const ImageDatabase* db_;
};

const Catalog* DatabaseIoTest::catalog_ = nullptr;
const ImageDatabase* DatabaseIoTest::db_ = nullptr;

TEST_F(DatabaseIoTest, CatalogRoundTrip) {
  const std::string blob = DatabaseIo::SerializeCatalog(*catalog_);
  StatusOr<Catalog> restored = DatabaseIo::DeserializeCatalog(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->categories().size(), catalog_->categories().size());
  ASSERT_EQ(restored->subconcepts().size(), catalog_->subconcepts().size());
  ASSERT_EQ(restored->queries().size(), catalog_->queries().size());
  for (std::size_t i = 0; i < catalog_->subconcepts().size(); ++i) {
    const SubConceptSpec& a = catalog_->subconcepts()[i];
    const SubConceptSpec& b = restored->subconcepts()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.recipe.shape, b.recipe.shape);
    EXPECT_EQ(a.recipe.shape_color, b.recipe.shape_color);
    EXPECT_DOUBLE_EQ(a.recipe.shape_size_frac, b.recipe.shape_size_frac);
  }
  for (std::size_t q = 0; q < catalog_->queries().size(); ++q) {
    EXPECT_EQ(restored->queries()[q].name, catalog_->queries()[q].name);
    EXPECT_EQ(restored->queries()[q].AllMembers(),
              catalog_->queries()[q].AllMembers());
  }
}

TEST_F(DatabaseIoTest, DatabaseRoundTrip) {
  const std::string blob = DatabaseIo::SerializeDatabase(*db_);
  StatusOr<ImageDatabase> restored = DatabaseIo::DeserializeDatabase(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_TRUE(restored->has_channel_features());
  ExpectDatabasesEqual(*db_, *restored);
  // Renders reproduce identical pixels.
  EXPECT_TRUE(restored->Render(7) == db_->Render(7));
}

TEST_F(DatabaseIoTest, SerializationIsByteStable) {
  // Serialize → Deserialize → Serialize is the identity on the bytes; the
  // cache key of a snapshot never churns across load/save cycles.
  const std::string blob = DatabaseIo::SerializeDatabase(*db_);
  StatusOr<ImageDatabase> restored = DatabaseIo::DeserializeDatabase(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(DatabaseIo::SerializeDatabase(*restored), blob);
}

TEST_F(DatabaseIoTest, PropertyRoundTripRandomizedDatabases) {
  // Round-trip a spread of small synthesized databases: category counts,
  // image counts (down to the degenerate 1-per-catalog floor), channel
  // extraction on/off. Every instance must restore structurally equal and
  // re-serialize byte-identically, for v2 and through the v1 compat path.
  const struct {
    std::size_t categories;
    std::size_t images;
    bool channels;
  } cases[] = {
      {12, 40, false}, {14, 64, true}, {16, 1, false}, {20, 150, true},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE("categories=" + std::to_string(c.categories) +
                 " images=" + std::to_string(c.images) +
                 (c.channels ? " channels" : ""));
    CatalogOptions catalog_options;
    catalog_options.num_categories = c.categories;
    const Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = c.images;
    options.image_width = 16;
    options.image_height = 16;
    options.extract_viewpoint_channels = c.channels;
    options.seed = 1000 + c.images;
    const ImageDatabase db =
        DatabaseSynthesizer::Synthesize(catalog, options).value();

    const std::string v2 = DatabaseIo::SerializeDatabase(db);
    StatusOr<ImageDatabase> restored = DatabaseIo::DeserializeDatabase(v2);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ExpectDatabasesEqual(db, *restored);
    EXPECT_EQ(DatabaseIo::SerializeDatabase(*restored), v2);

    const std::string v1 = DatabaseIo::SerializeDatabaseV1(db);
    StatusOr<ImageDatabase> from_v1 = DatabaseIo::DeserializeDatabase(v1);
    ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
    ExpectDatabasesEqual(db, *from_v1);
    EXPECT_EQ(DatabaseIo::SerializeDatabase(*from_v1), v2)
        << "v1 → v2 migration must produce the canonical v2 bytes";
  }
}

TEST_F(DatabaseIoTest, EmptyDatabaseRoundTrips) {
  // The zero-image edge case: empty records, empty feature tables, default
  // normalizer, empty catalog.
  const ImageDatabase empty;
  const std::string blob = DatabaseIo::SerializeDatabase(empty);
  StatusOr<ImageDatabase> restored = DatabaseIo::DeserializeDatabase(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), 0u);
  EXPECT_FALSE(restored->has_channel_features());
  EXPECT_EQ(restored->feature_dim(), 0u);
  EXPECT_EQ(DatabaseIo::SerializeDatabase(*restored), blob);
}

TEST_F(DatabaseIoTest, V1CompatReaderStillReadsLegacyBlobs) {
  const std::string v1 = DatabaseIo::SerializeDatabaseV1(*db_);
  ASSERT_EQ(v1.compare(0, 8, "QDDB0001"), 0);
  StatusOr<ImageDatabase> restored = DatabaseIo::DeserializeDatabase(v1);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectDatabasesEqual(*db_, *restored);
}

TEST_F(DatabaseIoTest, DatabaseWithoutChannelsRoundTrips) {
  SynthesizerOptions options;
  options.total_images = 80;
  options.image_width = 16;
  options.image_height = 16;
  options.extract_viewpoint_channels = false;
  const ImageDatabase small =
      DatabaseSynthesizer::Synthesize(*catalog_, options).value();
  StatusOr<ImageDatabase> restored =
      DatabaseIo::DeserializeDatabase(DatabaseIo::SerializeDatabase(small));
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->has_channel_features());
  EXPECT_EQ(restored->size(), 80u);
}

TEST_F(DatabaseIoTest, RejectsCorruptBlobs) {
  EXPECT_FALSE(DatabaseIo::DeserializeDatabase("").ok());
  EXPECT_FALSE(DatabaseIo::DeserializeDatabase("XXXXXXXXjunk").ok());
  EXPECT_FALSE(DatabaseIo::DeserializeCatalog("YYYYYYYYjunk").ok());
  std::string blob = DatabaseIo::SerializeDatabase(*db_);
  blob.resize(blob.size() / 3);
  EXPECT_FALSE(DatabaseIo::DeserializeDatabase(blob).ok());
}

TEST_F(DatabaseIoTest, ReportsTypedStatuses) {
  const std::string blob = DatabaseIo::SerializeDatabase(*db_);
  EXPECT_EQ(DatabaseIo::DeserializeDatabase("").status().code(),
            StatusCode::kTruncated);
  EXPECT_EQ(DatabaseIo::DeserializeDatabase("XXXXXXXXjunk").status().code(),
            StatusCode::kCorrupt);
  EXPECT_EQ(DatabaseIo::DeserializeDatabase(blob.substr(0, blob.size() / 2))
                .status()
                .code(),
            StatusCode::kTruncated);
  // An unknown future version is neither corrupt nor truncated.
  std::string future = blob;
  future[8] = 99;  // version field low byte
  EXPECT_EQ(DatabaseIo::DeserializeDatabase(future).status().code(),
            StatusCode::kVersionMismatch);
}

TEST_F(DatabaseIoTest, HostileLengthFieldsFailFastWithoutOverAllocating) {
  // Regression for the v1-era bug class: counts/lengths embedded in the
  // byte stream were trusted before any bounds check, so a hostile field
  // could drive a multi-gigabyte resize or an overflowing multiply. Each
  // overwrite below plants an absurd length; the loader must reject the
  // blob (typed), not allocate for it. With checksums enabled the CRC
  // catches the edit first, so the decode-layer guards are exercised via
  // the catalog path (unchecksummed) and the v1 compat path.
  std::string catalog_blob = DatabaseIo::SerializeCatalog(*catalog_);
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  std::memcpy(catalog_blob.data() + 8, &huge, sizeof(huge));
  const StatusOr<Catalog> catalog = DatabaseIo::DeserializeCatalog(catalog_blob);
  ASSERT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(), StatusCode::kTruncated);

  // v1 blob with the record count replaced: the count sits right after the
  // catalog body and the two 4-byte dimensions.
  std::string v1 = DatabaseIo::SerializeDatabaseV1(*db_);
  const std::string clean_catalog = DatabaseIo::SerializeCatalog(*catalog_);
  const std::size_t catalog_body = clean_catalog.size() - 8;
  const std::size_t count_at = 8 + catalog_body + 8;
  std::memcpy(v1.data() + count_at, &huge, sizeof(huge));
  const StatusOr<ImageDatabase> db = DatabaseIo::DeserializeDatabase(v1);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kTruncated);
}

TEST_F(DatabaseIoTest, HostileChunkCountInsideVerifiedChunkIsRejected) {
  // Bypass the CRC shield (verify_checksums=false) to prove the decode
  // layer itself is hardened, not just the checksum in front of it.
  std::string blob = DatabaseIo::SerializeDatabase(*db_);
  StatusOr<SnapshotInfo> info =
      DatabaseIo::InspectSnapshot(MemoryByteSource(blob));
  ASSERT_TRUE(info.ok());
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  for (const SnapshotChunkInfo& chunk : info->chunks) {
    if (chunk.id != "FTB0") continue;
    std::memcpy(blob.data() + chunk.offset, &huge, sizeof(huge));
  }
  MemoryByteSource source(blob);
  SnapshotLoadOptions options;
  options.verify_checksums = false;
  const StatusOr<ImageDatabase> db =
      DatabaseIo::LoadDatabaseFrom(source, options);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorrupt);
}

TEST_F(DatabaseIoTest, InspectSnapshotListsChunksAndChecksums) {
  const std::string blob = DatabaseIo::SerializeDatabase(*db_);
  StatusOr<SnapshotInfo> info =
      DatabaseIo::InspectSnapshot(MemoryByteSource(blob));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, 2);
  EXPECT_EQ(info->file_size, blob.size());
  // Channel-extracted database: catalog, meta, records, 4 feature tables,
  // 4 normalizers.
  ASSERT_EQ(info->chunks.size(), 11u);
  EXPECT_EQ(info->chunks[0].id, "CATL");
  EXPECT_EQ(info->chunks[1].id, "META");
  EXPECT_EQ(info->chunks[2].id, "RECS");
  std::uint64_t end = 0;
  for (const SnapshotChunkInfo& chunk : info->chunks) {
    EXPECT_TRUE(chunk.crc_ok) << chunk.id;
    EXPECT_GE(chunk.offset, end) << "chunks must not overlap";
    end = chunk.offset + chunk.length;
  }
  EXPECT_EQ(end, blob.size());

  // Flip one payload byte: exactly that chunk's checksum goes bad.
  std::string corrupted = blob;
  const SnapshotChunkInfo& target = info->chunks[3];
  corrupted[target.offset + target.length / 2] ^= 0x10;
  StatusOr<SnapshotInfo> after =
      DatabaseIo::InspectSnapshot(MemoryByteSource(corrupted));
  ASSERT_TRUE(after.ok());
  for (std::size_t i = 0; i < after->chunks.size(); ++i) {
    EXPECT_EQ(after->chunks[i].crc_ok, i != 3) << after->chunks[i].id;
  }
}

TEST_F(DatabaseIoTest, EmbeddedRfsBlobRoundTrips) {
  const std::string rfs_payload = "opaque rfs bytes \x01\x02\x03";
  const std::string with_rfs =
      DatabaseIo::SerializeDatabase(*db_, &rfs_payload);
  const std::string without_rfs = DatabaseIo::SerializeDatabase(*db_);

  // The database decodes identically with or without the extra section.
  StatusOr<ImageDatabase> restored =
      DatabaseIo::DeserializeDatabase(with_rfs);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(DatabaseIo::SerializeDatabase(*restored), without_rfs);

  StatusOr<std::string> blob =
      DatabaseIo::LoadEmbeddedRfsBlobFrom(MemoryByteSource(with_rfs));
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(*blob, rfs_payload);

  StatusOr<std::string> missing =
      DatabaseIo::LoadEmbeddedRfsBlobFrom(MemoryByteSource(without_rfs));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(DatabaseIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/qdcbir_db_test.bin";
  ASSERT_TRUE(DatabaseIo::SaveDatabase(*db_, path).ok());
  StatusOr<ImageDatabase> loaded = DatabaseIo::LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), db_->size());
  std::remove(path.c_str());
  EXPECT_FALSE(DatabaseIo::LoadDatabase("/nonexistent/db.bin").ok());
}

}  // namespace
}  // namespace qdcbir
