#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/dataset/database_io.h"
#include "qdcbir/dataset/synthesizer.h"
#include "support/fault_stream.h"

namespace qdcbir {
namespace {

using testsupport::FaultInjectingSource;
using testsupport::FaultSpec;
using testsupport::FlipBit;
using testsupport::SampleOffsets;
using testsupport::TruncateAt;

/// The corruption contract: a damaged snapshot must always yield a typed
/// I/O error — never a crash, never an OOM, and never a silently wrong
/// database. Each sweep below damages a snapshot in a different way at
/// offsets covering every chunk boundary plus seeded interior points, and
/// asserts the exact Status family that class of damage must produce.
class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 12;
    const Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 60;
    options.image_width = 12;
    options.image_height = 12;
    const ImageDatabase db =
        DatabaseSynthesizer::Synthesize(catalog, options).value();
    const std::string rfs = "embedded-rfs-payload";
    blob_ = new std::string(DatabaseIo::SerializeDatabase(db, &rfs));
    info_ = new SnapshotInfo(
        DatabaseIo::InspectSnapshot(MemoryByteSource(*blob_)).value());
  }
  static void TearDownTestSuite() {
    delete blob_;
    delete info_;
  }

  /// Every structurally interesting offset: chunk starts and ends, the
  /// directory header, plus `interior` seeded probe points. Deduplicated
  /// and sorted so failures name a reproducible offset.
  static std::vector<std::size_t> ProbeOffsets(std::size_t interior) {
    std::set<std::size_t> probes;
    probes.insert(0);           // inside the magic
    probes.insert(8);           // version field
    probes.insert(12);          // chunk count field
    for (const SnapshotChunkInfo& chunk : info_->chunks) {
      probes.insert(chunk.offset);
      probes.insert(chunk.offset + chunk.length - 1);
      probes.insert(chunk.offset + chunk.length);  // first byte of the next
    }
    Rng rng(2026);
    for (const std::size_t off : SampleOffsets(rng, blob_->size(), interior)) {
      probes.insert(off);
    }
    std::vector<std::size_t> out(probes.begin(), probes.end());
    while (!out.empty() && out.back() >= blob_->size()) out.pop_back();
    return out;
  }

  static const std::string* blob_;
  static const SnapshotInfo* info_;
};

const std::string* SnapshotCorruptionTest::blob_ = nullptr;
const SnapshotInfo* SnapshotCorruptionTest::info_ = nullptr;

TEST_F(SnapshotCorruptionTest, TruncationAnywhereIsExactlyTruncated) {
  // Cutting the file at any point — a chunk boundary or mid-payload — is a
  // distinct condition from bit rot and must be reported as such.
  for (const std::size_t cut : ProbeOffsets(/*interior=*/48)) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    const StatusOr<ImageDatabase> db =
        DatabaseIo::DeserializeDatabase(TruncateAt(*blob_, cut));
    ASSERT_FALSE(db.ok()) << "truncated snapshot loaded successfully";
    EXPECT_EQ(db.status().code(), StatusCode::kTruncated)
        << db.status().ToString();
  }
}

TEST_F(SnapshotCorruptionTest, BitFlipAnywhereIsDetectedAndTyped) {
  // Single-bit damage is always caught (CRC32C detects all 1-bit errors)
  // and maps to one of the three snapshot error codes. Flips inside the
  // version field legitimately read as a different version — that is what
  // kVersionMismatch is for — and everything else is kCorrupt. kTruncated
  // can surface only from flips in the chunk-count field, which the
  // directory bounds checks hit before the directory checksum.
  for (const std::size_t offset : ProbeOffsets(/*interior=*/24)) {
    for (const int bit : {0, 5, 7}) {
      SCOPED_TRACE("flip bit " + std::to_string(bit) + " of byte " +
                   std::to_string(offset));
      const StatusOr<ImageDatabase> db =
          DatabaseIo::DeserializeDatabase(FlipBit(*blob_, offset, bit));
      ASSERT_FALSE(db.ok()) << "bit flip went undetected";
      const StatusCode code = db.status().code();
      EXPECT_TRUE(code == StatusCode::kCorrupt ||
                  code == StatusCode::kTruncated ||
                  code == StatusCode::kVersionMismatch)
          << db.status().ToString();
      if (offset >= 8 && offset < 12) {
        EXPECT_EQ(code, StatusCode::kVersionMismatch) << db.status().ToString();
      } else if (offset < 8 || offset >= 16) {
        EXPECT_EQ(code, StatusCode::kCorrupt) << db.status().ToString();
      }
    }
  }
}

TEST_F(SnapshotCorruptionTest, EveryFailedReadOperationPropagatesIoError) {
  // First count how many positioned reads a clean load issues, then replay
  // the load failing each one in turn. Whichever read dies, the loader must
  // surface the device error — a load can never quietly succeed with a
  // chunk it did not read.
  MemoryByteSource base(*blob_);
  FaultInjectingSource clean(base, FaultSpec{});
  ASSERT_TRUE(DatabaseIo::LoadDatabaseFrom(clean, SnapshotLoadOptions{}).ok());
  const std::uint64_t total_ops = clean.ops();
  ASSERT_GT(total_ops, 3u);

  for (std::uint64_t op = 0; op < total_ops; ++op) {
    SCOPED_TRACE("failing read operation " + std::to_string(op));
    FaultSpec spec;
    spec.fail_op = static_cast<std::int64_t>(op);
    FaultInjectingSource source(base, spec);
    const StatusOr<ImageDatabase> db =
        DatabaseIo::LoadDatabaseFrom(source, SnapshotLoadOptions{});
    ASSERT_FALSE(db.ok());
    EXPECT_EQ(db.status().code(), StatusCode::kIoError)
        << db.status().ToString();
  }
}

TEST_F(SnapshotCorruptionTest, ShortReadsSurfaceAsTruncated) {
  MemoryByteSource base(*blob_);
  FaultInjectingSource clean(base, FaultSpec{});
  ASSERT_TRUE(DatabaseIo::LoadDatabaseFrom(clean, SnapshotLoadOptions{}).ok());
  const std::uint64_t total_ops = clean.ops();

  for (std::uint64_t op = 0; op < total_ops; ++op) {
    SCOPED_TRACE("short read at operation " + std::to_string(op));
    FaultSpec spec;
    spec.short_read_op = static_cast<std::int64_t>(op);
    FaultInjectingSource source(base, spec);
    const StatusOr<ImageDatabase> db =
        DatabaseIo::LoadDatabaseFrom(source, SnapshotLoadOptions{});
    ASSERT_FALSE(db.ok());
    EXPECT_EQ(db.status().code(), StatusCode::kTruncated)
        << db.status().ToString();
  }
}

TEST_F(SnapshotCorruptionTest, V1BlobsGetTypedErrorsToo) {
  // The compat path predates checksums, so it cannot distinguish bit rot
  // from hostility — but it must still never crash and must type whatever
  // it reports. Truncations are exact; flips either fail typed or decode to
  // a structurally valid database (no checksum ⇒ no detection guarantee),
  // which is precisely the weakness the v2 format exists to close.
  CatalogOptions catalog_options;
  catalog_options.num_categories = 11;
  const Catalog catalog = Catalog::Build(catalog_options).value();
  SynthesizerOptions options;
  options.total_images = 30;
  options.image_width = 8;
  options.image_height = 8;
  options.extract_viewpoint_channels = false;
  const ImageDatabase db =
      DatabaseSynthesizer::Synthesize(catalog, options).value();
  const std::string v1 = DatabaseIo::SerializeDatabaseV1(db);

  Rng rng(77);
  for (const std::size_t cut : SampleOffsets(rng, v1.size(), 32)) {
    SCOPED_TRACE("v1 cut at " + std::to_string(cut));
    const StatusOr<ImageDatabase> loaded =
        DatabaseIo::DeserializeDatabase(TruncateAt(v1, cut));
    ASSERT_FALSE(loaded.ok());
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kTruncated || code == StatusCode::kCorrupt)
        << loaded.status().ToString();
  }
  for (const std::size_t offset : SampleOffsets(rng, v1.size(), 32)) {
    SCOPED_TRACE("v1 flip at " + std::to_string(offset));
    const StatusOr<ImageDatabase> loaded =
        DatabaseIo::DeserializeDatabase(FlipBit(v1, offset, 3));
    if (!loaded.ok()) {
      const StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kTruncated ||
                  code == StatusCode::kCorrupt)
          << loaded.status().ToString();
    }
  }
}

}  // namespace
}  // namespace qdcbir
