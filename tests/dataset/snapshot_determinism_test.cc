#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/database_io.h"
#include "qdcbir/dataset/synthesizer.h"
#include "support/fault_stream.h"

namespace qdcbir {
namespace {

using testsupport::FaultInjectingSource;
using testsupport::FaultSpec;
using testsupport::FlipBit;

/// The async loader's determinism contract: loading a snapshot through a
/// thread pool of any width produces a database byte-identical to the
/// sequential reference load, and a damaged snapshot produces the same
/// typed error regardless of how chunk reads were scheduled. This test is
/// part of the TSan CI job (its name matches the `determinism` filter), so
/// the overlapped read/decode path is also exercised under the race
/// detector here.
class SnapshotDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 12;
    const Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 90;
    options.image_width = 12;
    options.image_height = 12;
    const ImageDatabase db =
        DatabaseSynthesizer::Synthesize(catalog, options).value();
    const std::string rfs = "rfs state for determinism checks";
    blob_ = new std::string(DatabaseIo::SerializeDatabase(db, &rfs));
  }
  static void TearDownTestSuite() { delete blob_; }
  static const std::string* blob_;
};

const std::string* SnapshotDeterminismTest::blob_ = nullptr;

TEST_F(SnapshotDeterminismTest, LoadIsByteIdenticalAcrossPoolWidths) {
  MemoryByteSource source(*blob_);
  const StatusOr<ImageDatabase> reference =
      DatabaseIo::LoadDatabaseFrom(source, SnapshotLoadOptions{});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string canonical = DatabaseIo::SerializeDatabase(*reference);

  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("pool width " + std::to_string(width));
    ThreadPool pool(width);
    SnapshotLoadOptions options;
    options.pool = &pool;
    const StatusOr<ImageDatabase> loaded =
        DatabaseIo::LoadDatabaseFrom(source, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(DatabaseIo::SerializeDatabase(*loaded), canonical);
  }
}

TEST_F(SnapshotDeterminismTest, RepeatedParallelLoadsAgree) {
  // Same pool, many loads: chunk scheduling varies run to run, the result
  // must not.
  ThreadPool pool(4);
  SnapshotLoadOptions options;
  options.pool = &pool;
  MemoryByteSource source(*blob_);
  std::string first;
  for (int round = 0; round < 8; ++round) {
    const StatusOr<ImageDatabase> loaded =
        DatabaseIo::LoadDatabaseFrom(source, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const std::string bytes = DatabaseIo::SerializeDatabase(*loaded);
    if (round == 0) {
      first = bytes;
    } else {
      ASSERT_EQ(bytes, first) << "round " << round;
    }
  }
}

TEST_F(SnapshotDeterminismTest, CorruptChunkFailsIdenticallyAtEveryWidth) {
  // Flip one payload bit per chunk; whichever worker finds it, the load
  // must report the same typed error as the sequential reference load
  // (first failure in directory order).
  const StatusOr<SnapshotInfo> info =
      DatabaseIo::InspectSnapshot(MemoryByteSource(*blob_));
  ASSERT_TRUE(info.ok());
  for (const SnapshotChunkInfo& chunk : info->chunks) {
    const std::string damaged =
        FlipBit(*blob_, chunk.offset + chunk.length / 2, 2);
    MemoryByteSource source(damaged);
    const Status reference =
        DatabaseIo::LoadDatabaseFrom(source, SnapshotLoadOptions{}).status();
    ASSERT_FALSE(reference.ok()) << chunk.id;
    for (const std::size_t width : {2u, 4u, 8u}) {
      SCOPED_TRACE(chunk.id + " at pool width " + std::to_string(width));
      ThreadPool pool(width);
      SnapshotLoadOptions options;
      options.pool = &pool;
      const Status parallel =
          DatabaseIo::LoadDatabaseFrom(source, options).status();
      EXPECT_EQ(parallel.code(), reference.code());
      EXPECT_EQ(parallel.message(), reference.message());
    }
  }
}

TEST_F(SnapshotDeterminismTest, InjectedDeviceFaultUnderParallelLoadIsTyped) {
  // A transient read failure during an overlapped load: the op the fault
  // lands on is scheduling-dependent, but the outcome must always be the
  // typed device error — never a crash, partial database, or hang.
  MemoryByteSource base(*blob_);
  ThreadPool pool(4);
  SnapshotLoadOptions options;
  options.pool = &pool;
  for (std::int64_t op = 0; op < 8; ++op) {
    SCOPED_TRACE("fault at operation " + std::to_string(op));
    FaultSpec spec;
    spec.fail_op = op;
    FaultInjectingSource source(base, spec);
    const StatusOr<ImageDatabase> loaded =
        DatabaseIo::LoadDatabaseFrom(source, options);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError)
        << loaded.status().ToString();
  }
}

}  // namespace
}  // namespace qdcbir
