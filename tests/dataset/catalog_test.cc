#include "qdcbir/dataset/catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(Catalog::Build().value());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static const Catalog* catalog_;
};

const Catalog* CatalogTest::catalog_ = nullptr;

TEST_F(CatalogTest, BuildsRequestedCategoryCount) {
  EXPECT_EQ(catalog_->categories().size(), 150u);
}

TEST_F(CatalogTest, RejectsTooFewCategories) {
  CatalogOptions options;
  options.num_categories = 2;
  EXPECT_FALSE(Catalog::Build(options).ok());
}

TEST_F(CatalogTest, EvaluationCategoriesExist) {
  for (const char* name :
       {"person", "airplane", "bird", "car", "horse", "mountain", "rose",
        "water_sports", "computer", "white_sedan"}) {
    EXPECT_TRUE(catalog_->FindCategory(name).ok()) << name;
  }
}

TEST_F(CatalogTest, ElevenEvaluationQueries) {
  EXPECT_EQ(catalog_->queries().size(), 11u);
}

TEST_F(CatalogTest, QuerySubConceptCountsMatchPaperTable1) {
  const std::vector<std::pair<std::string, std::size_t>> expected = {
      {"a_person", 3},  {"airplane", 2},          {"bird", 3},
      {"car", 3},       {"horse", 3},             {"mountain_view", 2},
      {"rose", 2},      {"water_sports", 2},      {"computer", 3},
      {"personal_computer", 2},                   {"laptop", 2},
  };
  for (const auto& [name, count] : expected) {
    const QueryConceptSpec q = catalog_->FindQuery(name).value();
    EXPECT_EQ(q.subconcepts.size(), count) << name;
  }
}

TEST_F(CatalogTest, WhiteSedanHasFourViewSubconcepts) {
  const CategoryId id = catalog_->FindCategory("white_sedan").value();
  EXPECT_EQ(catalog_->category(id).subconcepts.size(), 4u);
}

TEST_F(CatalogTest, SubConceptIdsAreDenseAndConsistent) {
  const auto& subs = catalog_->subconcepts();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].id, i);
    // Category back-reference holds this sub-concept.
    const CategorySpec& cat = catalog_->category(subs[i].category);
    EXPECT_NE(std::find(cat.subconcepts.begin(), cat.subconcepts.end(),
                        subs[i].id),
              cat.subconcepts.end());
  }
}

TEST_F(CatalogTest, SubConceptNamesAreUnique) {
  std::set<std::string> names;
  for (const SubConceptSpec& s : catalog_->subconcepts()) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
  }
}

TEST_F(CatalogTest, LaptopQueryGroupsTwoDatasetSubconcepts) {
  const QueryConceptSpec computer = catalog_->FindQuery("computer").value();
  // The "laptop" ground-truth sub-concept unions both laptop variants.
  bool found_laptop_group = false;
  for (const QuerySubConcept& qs : computer.subconcepts) {
    if (qs.name == "laptop") {
      found_laptop_group = true;
      EXPECT_EQ(qs.members.size(), 2u);
    }
  }
  EXPECT_TRUE(found_laptop_group);
  EXPECT_EQ(computer.AllMembers().size(), 4u);
}

TEST_F(CatalogTest, FindersReturnNotFoundForUnknownNames) {
  EXPECT_EQ(catalog_->FindCategory("nonexistent").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_->FindSubConcept("nonexistent").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_->FindQuery("nonexistent").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, DeterministicForFixedSeed) {
  const Catalog a = Catalog::Build().value();
  const Catalog b = Catalog::Build().value();
  ASSERT_EQ(a.subconcepts().size(), b.subconcepts().size());
  for (std::size_t i = 0; i < a.subconcepts().size(); ++i) {
    EXPECT_EQ(a.subconcepts()[i].name, b.subconcepts()[i].name);
    EXPECT_EQ(a.subconcepts()[i].recipe.shape_color.r,
              b.subconcepts()[i].recipe.shape_color.r);
  }
}

TEST_F(CatalogTest, FillerCategoriesHaveSubconcepts) {
  for (const CategorySpec& cat : catalog_->categories()) {
    EXPECT_FALSE(cat.subconcepts.empty()) << cat.name;
  }
}

}  // namespace
}  // namespace qdcbir
