#include "qdcbir/image/color.h"

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(ColorTest, RgbToHsvPrimaries) {
  const Hsv red = RgbToHsv(Rgb{255, 0, 0});
  EXPECT_NEAR(red.h, 0.0, 1e-9);
  EXPECT_NEAR(red.s, 1.0, 1e-9);
  EXPECT_NEAR(red.v, 1.0, 1e-9);

  const Hsv green = RgbToHsv(Rgb{0, 255, 0});
  EXPECT_NEAR(green.h, 120.0, 1e-9);

  const Hsv blue = RgbToHsv(Rgb{0, 0, 255});
  EXPECT_NEAR(blue.h, 240.0, 1e-9);
}

TEST(ColorTest, GraysHaveZeroSaturation) {
  for (const std::uint8_t v : {0, 100, 255}) {
    const Hsv hsv = RgbToHsv(Rgb{v, v, v});
    EXPECT_EQ(hsv.s, 0.0);
    EXPECT_NEAR(hsv.v, v / 255.0, 1e-9);
  }
}

TEST(ColorTest, HsvRoundTrip) {
  for (int r = 0; r < 256; r += 51) {
    for (int g = 0; g < 256; g += 51) {
      for (int b = 0; b < 256; b += 51) {
        const Rgb in{static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(g),
                     static_cast<std::uint8_t>(b)};
        const Rgb out = HsvToRgb(RgbToHsv(in));
        EXPECT_NEAR(in.r, out.r, 1);
        EXPECT_NEAR(in.g, out.g, 1);
        EXPECT_NEAR(in.b, out.b, 1);
      }
    }
  }
}

TEST(ColorTest, HsvToRgbWrapsHue) {
  const Rgb a = HsvToRgb(Hsv{0.0, 1.0, 1.0});
  const Rgb b = HsvToRgb(Hsv{360.0, 1.0, 1.0});
  const Rgb c = HsvToRgb(Hsv{-360.0, 1.0, 1.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ColorTest, LumaWeights) {
  EXPECT_NEAR(Luma(Rgb{255, 255, 255}), 255.0, 1e-6);
  EXPECT_NEAR(Luma(Rgb{0, 0, 0}), 0.0, 1e-6);
  // Green dominates luma.
  EXPECT_GT(Luma(Rgb{0, 255, 0}), Luma(Rgb{255, 0, 0}));
  EXPECT_GT(Luma(Rgb{255, 0, 0}), Luma(Rgb{0, 0, 255}));
}

TEST(ColorTest, ToGrayscaleMakesChannelsEqual) {
  Image img(2, 1);
  img.Set(0, 0, Rgb{200, 50, 10});
  img.Set(1, 0, Rgb{0, 100, 255});
  const Image gray = ToGrayscale(img);
  for (int x = 0; x < 2; ++x) {
    const Rgb p = gray.At(x, 0);
    EXPECT_EQ(p.r, p.g);
    EXPECT_EQ(p.g, p.b);
  }
}

TEST(ColorTest, ToNegativeInverts) {
  Image img(1, 1, Rgb{10, 100, 250});
  const Image neg = ToNegative(img);
  EXPECT_EQ(neg.At(0, 0), (Rgb{245, 155, 5}));
  // Double negative restores the original.
  EXPECT_EQ(ToNegative(neg).At(0, 0), (Rgb{10, 100, 250}));
}

TEST(ColorTest, GrayNegativeIsNegativeOfGray) {
  Image img(1, 1, Rgb{200, 50, 10});
  const Image expected = ToNegative(ToGrayscale(img));
  EXPECT_EQ(ToGrayNegative(img), expected);
}

TEST(ColorTest, LerpColorEndpointsAndMidpoint) {
  const Rgb a{0, 0, 0};
  const Rgb b{100, 200, 50};
  EXPECT_EQ(LerpColor(a, b, 0.0), a);
  EXPECT_EQ(LerpColor(a, b, 1.0), b);
  const Rgb mid = LerpColor(a, b, 0.5);
  EXPECT_EQ(mid, (Rgb{50, 100, 25}));
  // t is clamped.
  EXPECT_EQ(LerpColor(a, b, 2.0), b);
}

TEST(ColorTest, ScaleColorClamps) {
  EXPECT_EQ(ScaleColor(Rgb{100, 100, 100}, 0.5), (Rgb{50, 50, 50}));
  EXPECT_EQ(ScaleColor(Rgb{200, 200, 200}, 2.0), (Rgb{255, 255, 255}));
  EXPECT_EQ(ScaleColor(Rgb{10, 10, 10}, -1.0), (Rgb{0, 0, 0}));
}

}  // namespace
}  // namespace qdcbir
