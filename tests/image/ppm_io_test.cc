#include "qdcbir/image/ppm_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

Image MakeTestImage() {
  Image img(3, 2);
  img.Set(0, 0, Rgb{255, 0, 0});
  img.Set(1, 0, Rgb{0, 255, 0});
  img.Set(2, 0, Rgb{0, 0, 255});
  img.Set(0, 1, Rgb{1, 2, 3});
  img.Set(1, 1, Rgb{250, 251, 252});
  img.Set(2, 1, Rgb{128, 128, 128});
  return img;
}

TEST(PpmIoTest, EncodeDecodeRoundTrip) {
  const Image img = MakeTestImage();
  const std::string bytes = EncodePpm(img);
  StatusOr<Image> decoded = DecodePpm(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == img);
}

TEST(PpmIoTest, EncodeProducesP6Header) {
  const std::string bytes = EncodePpm(MakeTestImage());
  EXPECT_EQ(bytes.substr(0, 2), "P6");
  EXPECT_NE(bytes.find("3 2"), std::string::npos);
  EXPECT_NE(bytes.find("255"), std::string::npos);
}

TEST(PpmIoTest, DecodeSupportsComments) {
  const std::string bytes = "P6\n# a comment\n1 1\n# another\n255\n\x01\x02\x03";
  StatusOr<Image> decoded = DecodePpm(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->At(0, 0), (Rgb{1, 2, 3}));
}

TEST(PpmIoTest, DecodeRejectsBadMagic) {
  StatusOr<Image> decoded = DecodePpm("P5\n1 1\n255\nxyz");
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIoError);
}

TEST(PpmIoTest, DecodeRejectsTruncatedPixelData) {
  StatusOr<Image> decoded = DecodePpm("P6\n2 2\n255\n\x01\x02\x03");
  EXPECT_FALSE(decoded.ok());
}

TEST(PpmIoTest, DecodeRejectsNonStandardMaxval) {
  StatusOr<Image> decoded = DecodePpm("P6\n1 1\n65535\n\x01\x02\x03");
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
}

TEST(PpmIoTest, DecodeRejectsGarbageHeader) {
  StatusOr<Image> decoded = DecodePpm("P6\nabc def\n255\nxyz");
  EXPECT_FALSE(decoded.ok());
}

TEST(PpmIoTest, FileRoundTrip) {
  const Image img = MakeTestImage();
  const std::string path = ::testing::TempDir() + "/qdcbir_ppm_test.ppm";
  ASSERT_TRUE(WritePpm(img, path).ok());
  StatusOr<Image> loaded = ReadPpm(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == img);
  std::remove(path.c_str());
}

TEST(PpmIoTest, ReadMissingFileFails) {
  StatusOr<Image> loaded = ReadPpm("/nonexistent/deeply/missing.ppm");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(PpmIoTest, EmptyImageRoundTrips) {
  Image img(0, 0);
  StatusOr<Image> decoded = DecodePpm(EncodePpm(img));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

}  // namespace
}  // namespace qdcbir
