#include "qdcbir/image/draw.h"

#include <cmath>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

int CountPixels(const Image& img, Rgb color) {
  int count = 0;
  for (const Rgb& p : img.pixels()) {
    if (p == color) ++count;
  }
  return count;
}

constexpr Rgb kInk{255, 0, 0};
constexpr Rgb kBg{0, 0, 0};

TEST(DrawTest, FillRectCoversExactArea) {
  Image img(10, 10, kBg);
  FillRect(img, 2, 3, 5, 7, kInk);
  EXPECT_EQ(CountPixels(img, kInk), 3 * 4);
  EXPECT_EQ(img.At(2, 3), kInk);
  EXPECT_EQ(img.At(4, 6), kInk);
  EXPECT_EQ(img.At(5, 7), kBg);  // half-open bounds
}

TEST(DrawTest, FillRectClipsAtBorders) {
  Image img(4, 4, kBg);
  FillRect(img, -5, -5, 100, 100, kInk);
  EXPECT_EQ(CountPixels(img, kInk), 16);
}

TEST(DrawTest, FillCircleAreaApproximatesPiRSquared) {
  Image img(100, 100, kBg);
  FillCircle(img, 50.0, 50.0, 20.0, kInk);
  const double area = CountPixels(img, kInk);
  const double expected = M_PI * 20.0 * 20.0;
  EXPECT_NEAR(area, expected, expected * 0.05);
}

TEST(DrawTest, FillCircleCenterIsInk) {
  Image img(20, 20, kBg);
  FillCircle(img, 10.0, 10.0, 5.0, kInk);
  EXPECT_EQ(img.At(10, 10), kInk);
  EXPECT_EQ(img.At(0, 0), kBg);
}

TEST(DrawTest, FillEllipseRespectsAspect) {
  Image img(100, 100, kBg);
  FillEllipse(img, 50.0, 50.0, 30.0, 10.0, kInk);
  EXPECT_EQ(img.At(75, 50), kInk);   // inside along x
  EXPECT_EQ(img.At(50, 75), kBg);    // outside along y
}

TEST(DrawTest, FillPolygonTriangleArea) {
  Image img(100, 100, kBg);
  FillPolygon(img, {{10.0, 10.0}, {90.0, 10.0}, {10.0, 90.0}}, kInk);
  const double area = CountPixels(img, kInk);
  EXPECT_NEAR(area, 0.5 * 80.0 * 80.0, 0.5 * 80.0 * 80.0 * 0.05);
}

TEST(DrawTest, FillPolygonIgnoresDegenerateInput) {
  Image img(10, 10, kBg);
  FillPolygon(img, {{1.0, 1.0}, {2.0, 2.0}}, kInk);
  EXPECT_EQ(CountPixels(img, kInk), 0);
}

TEST(DrawTest, FillTriangleMatchesPolygon) {
  Image a(50, 50, kBg), b(50, 50, kBg);
  FillTriangle(a, {5, 5}, {45, 5}, {25, 45}, kInk);
  FillPolygon(b, {{5, 5}, {45, 5}, {25, 45}}, kInk);
  EXPECT_TRUE(a == b);
}

TEST(DrawTest, DrawLineConnectsEndpoints) {
  Image img(20, 20, kBg);
  DrawLine(img, {2, 2}, {17, 17}, kInk, 1);
  EXPECT_EQ(img.At(2, 2), kInk);
  EXPECT_EQ(img.At(17, 17), kInk);
  EXPECT_EQ(img.At(10, 10), kInk);  // on the diagonal
  EXPECT_EQ(img.At(2, 17), kBg);
}

TEST(DrawTest, ThickLineCoversMorePixels) {
  Image thin(30, 30, kBg), thick(30, 30, kBg);
  DrawLine(thin, {5, 15}, {25, 15}, kInk, 1);
  DrawLine(thick, {5, 15}, {25, 15}, kInk, 5);
  EXPECT_GT(CountPixels(thick, kInk), 2 * CountPixels(thin, kInk));
}

TEST(DrawTest, VerticalGradientEndpoints) {
  Image img(3, 10);
  VerticalGradient(img, Rgb{0, 0, 0}, Rgb{200, 100, 50});
  EXPECT_EQ(img.At(1, 0), (Rgb{0, 0, 0}));
  EXPECT_EQ(img.At(1, 9), (Rgb{200, 100, 50}));
  // Monotone in between.
  EXPECT_LT(img.At(1, 2).r, img.At(1, 7).r);
}

TEST(DrawTest, HorizontalGradientEndpoints) {
  Image img(10, 3);
  HorizontalGradient(img, Rgb{10, 10, 10}, Rgb{250, 250, 250});
  EXPECT_EQ(img.At(0, 1), (Rgb{10, 10, 10}));
  EXPECT_EQ(img.At(9, 1), (Rgb{250, 250, 250}));
}

TEST(DrawTest, GaussianNoisePerturbsPixels) {
  Image img(30, 30, Rgb{128, 128, 128});
  Rng rng(5);
  AddGaussianNoise(img, 10.0, rng);
  int changed = 0;
  for (const Rgb& p : img.pixels()) {
    if (!(p == Rgb{128, 128, 128})) ++changed;
  }
  EXPECT_GT(changed, 700);  // nearly all pixels move
}

TEST(DrawTest, GaussianNoiseZeroStddevIsNoOp) {
  Image img(5, 5, Rgb{99, 99, 99});
  Rng rng(5);
  AddGaussianNoise(img, 0.0, rng);
  EXPECT_EQ(CountPixels(img, Rgb{99, 99, 99}), 25);
}

TEST(DrawTest, RotatePointsQuarterTurn) {
  const std::vector<Point2> rotated =
      RotatePoints({{1.0, 0.0}}, {0.0, 0.0}, M_PI / 2.0);
  EXPECT_NEAR(rotated[0].x, 0.0, 1e-12);
  EXPECT_NEAR(rotated[0].y, 1.0, 1e-12);
}

TEST(DrawTest, RegularPolygonHasRequestedVertices) {
  const std::vector<Point2> hex = RegularPolygon({0.0, 0.0}, 2.0, 6);
  ASSERT_EQ(hex.size(), 6u);
  for (const Point2& p : hex) {
    EXPECT_NEAR(std::hypot(p.x, p.y), 2.0, 1e-9);
  }
}

}  // namespace
}  // namespace qdcbir
