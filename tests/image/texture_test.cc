#include "qdcbir/image/texture.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "qdcbir/image/color.h"

namespace qdcbir {
namespace {

double MeanLuma(const Image& img) {
  double sum = 0.0;
  for (const Rgb& p : img.pixels()) sum += Luma(p);
  return sum / static_cast<double>(img.pixel_count());
}

int DistinctColors(const Image& img) {
  std::vector<int> packed;
  for (const Rgb& p : img.pixels()) {
    packed.push_back(p.r << 16 | p.g << 8 | p.b);
  }
  std::sort(packed.begin(), packed.end());
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
  return static_cast<int>(packed.size());
}

TEST(TextureTest, CheckerboardAlternates) {
  Image img(8, 8, Rgb{0, 0, 0});
  Checkerboard(img, 2, Rgb{255, 255, 255}, 1.0);
  EXPECT_EQ(img.At(0, 0), (Rgb{255, 255, 255}));
  EXPECT_EQ(img.At(2, 0), (Rgb{0, 0, 0}));
  EXPECT_EQ(img.At(2, 2), (Rgb{255, 255, 255}));
}

TEST(TextureTest, CheckerboardAlphaBlends) {
  Image img(4, 4, Rgb{0, 0, 0});
  Checkerboard(img, 2, Rgb{255, 255, 255}, 0.5);
  // Blended cells are mid-gray, not white.
  EXPECT_NEAR(img.At(0, 0).r, 128, 2);
}

TEST(TextureTest, CheckerboardZeroCellIsNoOp) {
  Image img(4, 4, Rgb{7, 7, 7});
  Checkerboard(img, 0, Rgb{255, 255, 255}, 1.0);
  EXPECT_EQ(img.At(0, 0), (Rgb{7, 7, 7}));
}

TEST(TextureTest, StripesProduceTwoBands) {
  Image img(16, 16, Rgb{0, 0, 0});
  Stripes(img, 8.0, 0.0, Rgb{255, 255, 255}, 1.0);
  EXPECT_GT(DistinctColors(img), 1);
  // Horizontal-normal stripes at angle 0 vary along x.
  bool varies = false;
  for (int x = 1; x < 16; ++x) {
    if (!(img.At(x, 0) == img.At(0, 0))) varies = true;
  }
  EXPECT_TRUE(varies);
}

TEST(TextureTest, ValueNoiseModulatesBrightness) {
  Image img(32, 32, Rgb{128, 128, 128});
  Rng rng(3);
  ValueNoise(img, 8.0, 0.4, rng);
  EXPECT_GT(DistinctColors(img), 10);
  // Mean brightness stays near the base value.
  EXPECT_NEAR(MeanLuma(img), 128.0, 20.0);
}

TEST(TextureTest, ValueNoiseZeroAmplitudeIsNoOp) {
  Image img(8, 8, Rgb{50, 60, 70});
  Rng rng(3);
  ValueNoise(img, 4.0, 0.0, rng);
  EXPECT_EQ(img.At(3, 3), (Rgb{50, 60, 70}));
}

TEST(TextureTest, SpeckleDotsAddInk) {
  Image img(32, 32, Rgb{0, 0, 0});
  Rng rng(5);
  SpeckleDots(img, 20, 2.0, Rgb{255, 0, 0}, rng);
  int red = 0;
  for (const Rgb& p : img.pixels()) {
    if (p == Rgb{255, 0, 0}) ++red;
  }
  EXPECT_GT(red, 20);  // at least one pixel per dot
}

TEST(TextureTest, SpeckleDeterministicPerSeed) {
  Image a(16, 16, Rgb{0, 0, 0});
  Image b(16, 16, Rgb{0, 0, 0});
  Rng ra(9), rb(9);
  SpeckleDots(a, 10, 1.5, Rgb{1, 2, 3}, ra);
  SpeckleDots(b, 10, 1.5, Rgb{1, 2, 3}, rb);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace qdcbir
