#include "qdcbir/image/image.h"

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(ImageTest, DefaultIsEmpty) {
  Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
  EXPECT_EQ(img.height(), 0);
  EXPECT_EQ(img.pixel_count(), 0u);
}

TEST(ImageTest, ConstructionWithFill) {
  Image img(4, 3, Rgb{10, 20, 30});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_EQ(img.At(3, 2), (Rgb{10, 20, 30}));
}

TEST(ImageTest, SetAndGet) {
  Image img(2, 2);
  img.Set(1, 0, Rgb{255, 0, 0});
  EXPECT_EQ(img.At(1, 0), (Rgb{255, 0, 0}));
  EXPECT_EQ(img.At(0, 0), (Rgb{0, 0, 0}));
}

TEST(ImageTest, SetClippedIgnoresOutOfBounds) {
  Image img(2, 2, Rgb{1, 1, 1});
  img.SetClipped(-1, 0, Rgb{9, 9, 9});
  img.SetClipped(0, 5, Rgb{9, 9, 9});
  img.SetClipped(1, 1, Rgb{9, 9, 9});
  EXPECT_EQ(img.At(1, 1), (Rgb{9, 9, 9}));
  EXPECT_EQ(img.At(0, 0), (Rgb{1, 1, 1}));
}

TEST(ImageTest, InBounds) {
  Image img(3, 2);
  EXPECT_TRUE(img.InBounds(0, 0));
  EXPECT_TRUE(img.InBounds(2, 1));
  EXPECT_FALSE(img.InBounds(3, 0));
  EXPECT_FALSE(img.InBounds(0, 2));
  EXPECT_FALSE(img.InBounds(-1, 0));
}

TEST(ImageTest, FillOverwritesEverything) {
  Image img(3, 3, Rgb{1, 2, 3});
  img.Fill(Rgb{7, 8, 9});
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_EQ(img.At(x, y), (Rgb{7, 8, 9}));
    }
  }
}

TEST(ImageTest, EqualityComparesDimensionsAndPixels) {
  Image a(2, 2, Rgb{5, 5, 5});
  Image b(2, 2, Rgb{5, 5, 5});
  EXPECT_TRUE(a == b);
  b.Set(0, 0, Rgb{6, 5, 5});
  EXPECT_FALSE(a == b);
  Image c(2, 3, Rgb{5, 5, 5});
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace qdcbir
