#include "qdcbir/features/extractor.h"

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/image/color.h"
#include "qdcbir/image/draw.h"

namespace qdcbir {
namespace {

Image RandomImage(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  Image img(w, h);
  for (Rgb& p : img.pixels()) {
    p = Rgb{static_cast<std::uint8_t>(rng.UniformInt(256)),
            static_cast<std::uint8_t>(rng.UniformInt(256)),
            static_cast<std::uint8_t>(rng.UniformInt(256))};
  }
  return img;
}

TEST(ExtractorTest, Produces37Dimensions) {
  FeatureExtractor extractor;
  StatusOr<FeatureVector> f = extractor.Extract(RandomImage(32, 32, 1));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->dim(), kPaperFeatureDim);
  EXPECT_EQ(extractor.dim(), 37u);
}

TEST(ExtractorTest, LayoutConstantsAreConsistent) {
  EXPECT_EQ(kPaperLayout.color_end - kPaperLayout.color_begin, 9u);
  EXPECT_EQ(kPaperLayout.texture_end - kPaperLayout.texture_begin, 10u);
  EXPECT_EQ(kPaperLayout.edge_end - kPaperLayout.edge_begin, 18u);
  EXPECT_EQ(kPaperLayout.edge_end, kPaperFeatureDim);
}

TEST(ExtractorTest, RejectsEmptyImage) {
  FeatureExtractor extractor;
  StatusOr<FeatureVector> f = extractor.Extract(Image());
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExtractorTest, DeterministicForSameImage) {
  FeatureExtractor extractor;
  const Image img = RandomImage(24, 24, 7);
  const FeatureVector a = extractor.Extract(img).value();
  const FeatureVector b = extractor.Extract(img).value();
  EXPECT_EQ(a, b);
}

TEST(ExtractorTest, DifferentImagesDiffer) {
  FeatureExtractor extractor;
  const FeatureVector a = extractor.Extract(RandomImage(24, 24, 1)).value();
  const FeatureVector b = extractor.Extract(RandomImage(24, 24, 2)).value();
  EXPECT_GT(SquaredL2(a, b), 0.0);
}

TEST(ExtractorTest, ChannelNamesAreDistinct) {
  EXPECT_STREQ(ViewpointChannelName(ViewpointChannel::kOriginal), "original");
  EXPECT_STREQ(ViewpointChannelName(ViewpointChannel::kNegative), "negative");
  EXPECT_STREQ(ViewpointChannelName(ViewpointChannel::kGray), "gray");
  EXPECT_STREQ(ViewpointChannelName(ViewpointChannel::kGrayNegative),
               "gray_negative");
}

TEST(ExtractorTest, ApplyViewpointChannelOriginalIsIdentity) {
  const Image img = RandomImage(16, 16, 3);
  EXPECT_TRUE(ApplyViewpointChannel(img, ViewpointChannel::kOriginal) == img);
}

TEST(ExtractorTest, ApplyViewpointChannelMatchesColorTransforms) {
  const Image img = RandomImage(16, 16, 4);
  EXPECT_TRUE(ApplyViewpointChannel(img, ViewpointChannel::kNegative) ==
              ToNegative(img));
  EXPECT_TRUE(ApplyViewpointChannel(img, ViewpointChannel::kGray) ==
              ToGrayscale(img));
  EXPECT_TRUE(ApplyViewpointChannel(img, ViewpointChannel::kGrayNegative) ==
              ToGrayNegative(img));
}

TEST(ExtractorTest, ChannelFeaturesDifferFromOriginal) {
  FeatureExtractor extractor;
  Image img(24, 24, Rgb{30, 30, 30});
  FillCircle(img, 12, 12, 7, Rgb{220, 40, 40});
  const FeatureVector original = extractor.Extract(img).value();
  const FeatureVector negative =
      extractor.ExtractChannel(img, ViewpointChannel::kNegative).value();
  EXPECT_GT(SquaredL2(original, negative), 0.01);
}

TEST(ExtractorTest, GrayChannelKillsSaturationMoments) {
  FeatureExtractor extractor;
  Image img(24, 24, Rgb{200, 30, 30});
  const FeatureVector gray =
      extractor.ExtractChannel(img, ViewpointChannel::kGray).value();
  // Saturation mean (index 3) of a grayscale image is zero.
  EXPECT_NEAR(gray[3], 0.0, 1e-9);
}

}  // namespace
}  // namespace qdcbir
