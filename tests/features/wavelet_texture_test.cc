#include "qdcbir/features/wavelet_texture.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/image/draw.h"
#include "qdcbir/image/texture.h"

namespace qdcbir {
namespace {

TEST(HaarTransformTest, ConstantInputHasOnlyLlEnergy) {
  const std::vector<double> input(16, 3.0);  // 4x4 constant
  const HaarSubbands bands = HaarTransform2D(input, 4, 4);
  EXPECT_EQ(bands.width, 2);
  EXPECT_EQ(bands.height, 2);
  for (const double v : bands.lh) EXPECT_NEAR(v, 0.0, 1e-12);
  for (const double v : bands.hl) EXPECT_NEAR(v, 0.0, 1e-12);
  for (const double v : bands.hh) EXPECT_NEAR(v, 0.0, 1e-12);
  for (const double v : bands.ll) EXPECT_NEAR(v, 6.0, 1e-12);
}

TEST(HaarTransformTest, EnergyConservation) {
  Rng rng(5);
  std::vector<double> input(64);
  for (double& v : input) v = rng.UniformDouble(-1.0, 1.0);
  const HaarSubbands bands = HaarTransform2D(input, 8, 8);
  double in_energy = 0.0;
  for (const double v : input) in_energy += v * v;
  double out_energy = 0.0;
  for (const auto* band : {&bands.ll, &bands.lh, &bands.hl, &bands.hh}) {
    for (const double v : *band) out_energy += v * v;
  }
  // Orthonormal transform preserves total energy.
  EXPECT_NEAR(in_energy, out_energy, 1e-9);
}

TEST(HaarTransformTest, VerticalEdgeLandsInHlBand) {
  // Left half 0, right half 1 on a 4x4 grid, edge between columns 1 and 2:
  // within each 2x2 block the values are constant, so place the edge inside
  // blocks by using columns 0/1 different.
  std::vector<double> input = {
      0, 1, 1, 1,
      0, 1, 1, 1,
      0, 1, 1, 1,
      0, 1, 1, 1,
  };
  const HaarSubbands bands = HaarTransform2D(input, 4, 4);
  double hl = 0.0, lh = 0.0;
  for (const double v : bands.hl) hl += v * v;
  for (const double v : bands.lh) lh += v * v;
  EXPECT_GT(hl, 0.1);
  EXPECT_NEAR(lh, 0.0, 1e-12);
}

TEST(WaveletTextureTest, ConstantImageHasZeroDetailEnergy) {
  Image img(32, 32, Rgb{100, 100, 100});
  const auto f = ComputeWaveletTexture(img);
  // Detail features (indices 1..9) are zero; LL (index 0) is positive.
  EXPECT_GT(f[0], 0.0);
  for (std::size_t i = 1; i < kWaveletTextureDim; ++i) {
    EXPECT_NEAR(f[i], 0.0, 1e-9) << "detail index " << i;
  }
}

TEST(WaveletTextureTest, TexturedImageHasMoreDetailEnergy) {
  Image smooth(32, 32, Rgb{128, 128, 128});
  Image busy(32, 32, Rgb{128, 128, 128});
  // Cell size 4 survives the 3x3 anti-alias prefilter.
  Checkerboard(busy, 4, Rgb{255, 255, 255}, 1.0);
  const auto fs = ComputeWaveletTexture(smooth);
  const auto fb = ComputeWaveletTexture(busy);
  double smooth_detail = 0.0, busy_detail = 0.0;
  for (std::size_t i = 1; i < kWaveletTextureDim; ++i) {
    smooth_detail += fs[i];
    busy_detail += fb[i];
  }
  EXPECT_GT(busy_detail, smooth_detail + 0.1);
}

TEST(WaveletTextureTest, CoarseAndFineTexturesDiffer) {
  Image fine(32, 32, Rgb{0, 0, 0});
  Image coarse(32, 32, Rgb{0, 0, 0});
  Checkerboard(fine, 2, Rgb{255, 255, 255}, 1.0);
  Checkerboard(coarse, 8, Rgb{255, 255, 255}, 1.0);
  const auto ff = ComputeWaveletTexture(fine);
  const auto fc = ComputeWaveletTexture(coarse);
  double diff = 0.0;
  for (std::size_t i = 0; i < kWaveletTextureDim; ++i) {
    diff += std::fabs(ff[i] - fc[i]);
  }
  EXPECT_GT(diff, 0.5);
}

TEST(WaveletTextureTest, EmptyImageYieldsZeros) {
  const auto f = ComputeWaveletTexture(Image());
  for (const double v : f) EXPECT_EQ(v, 0.0);
}

TEST(WaveletTextureTest, OddDimensionsHandledByPadding) {
  Image img(33, 31, Rgb{50, 50, 50});
  const auto f = ComputeWaveletTexture(img);
  EXPECT_GT(f[0], 0.0);  // no crash, sensible LL energy
}

TEST(WaveletTextureTest, StableUnderSmallTranslation) {
  // The 3x3 prefilter should make subband energies robust to 1-pixel
  // object shifts (the dyadic-alignment problem).
  Image a(32, 32, Rgb{20, 20, 20});
  Image b(32, 32, Rgb{20, 20, 20});
  FillRect(a, 8, 8, 20, 20, Rgb{220, 220, 220});
  FillRect(b, 9, 8, 21, 20, Rgb{220, 220, 220});
  const auto fa = ComputeWaveletTexture(a);
  const auto fb = ComputeWaveletTexture(b);
  for (std::size_t i = 0; i < kWaveletTextureDim; ++i) {
    EXPECT_NEAR(fa[i], fb[i], 0.35) << "feature " << i;
  }
}

}  // namespace
}  // namespace qdcbir
