#include "qdcbir/features/edge_structure.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "qdcbir/image/draw.h"

namespace qdcbir {
namespace {

TEST(GradientsTest, ConstantImageHasZeroGradient) {
  Image img(16, 16, Rgb{77, 77, 77});
  const GradientField field = ComputeGradients(img);
  for (const double m : field.magnitude) EXPECT_NEAR(m, 0.0, 1e-12);
}

TEST(GradientsTest, VerticalEdgeHasHorizontalGradient) {
  Image img(16, 16, Rgb{0, 0, 0});
  FillRect(img, 8, 0, 16, 16, Rgb{255, 255, 255});
  const GradientField field = ComputeGradients(img);
  // At the edge column the gradient points along x -> orientation ~ 0.
  const std::size_t i = 8 * 16 + 8;
  EXPECT_GT(field.magnitude[i - 1], 0.5);
  EXPECT_NEAR(field.orientation[i - 1], 0.0, 0.1);
}

TEST(GradientsTest, HorizontalEdgeHasVerticalGradient) {
  Image img(16, 16, Rgb{0, 0, 0});
  FillRect(img, 0, 8, 16, 16, Rgb{255, 255, 255});
  const GradientField field = ComputeGradients(img);
  const std::size_t i = 7 * 16 + 8;
  EXPECT_GT(field.magnitude[i], 0.5);
  EXPECT_NEAR(field.orientation[i], M_PI / 2.0, 0.1);
}

TEST(EdgeStructureTest, ConstantImageIsAllZero) {
  Image img(16, 16, Rgb{128, 128, 128});
  const auto f = ComputeEdgeStructure(img);
  for (const double v : f) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(EdgeStructureTest, HistogramSumsToOneWhenEdgesExist) {
  Image img(32, 32, Rgb{0, 0, 0});
  FillCircle(img, 16, 16, 10, Rgb{255, 255, 255});
  const auto f = ComputeEdgeStructure(img);
  double hist_sum = 0.0;
  for (int b = 0; b < 12; ++b) hist_sum += f[b];
  EXPECT_NEAR(hist_sum, 1.0, 1e-9);
}

TEST(EdgeStructureTest, DensityReflectsEdgeContent) {
  Image plain(32, 32, Rgb{0, 0, 0});
  Image busy(32, 32, Rgb{0, 0, 0});
  for (int i = 0; i < 8; ++i) {
    FillRect(busy, i * 4, 0, i * 4 + 2, 32, Rgb{255, 255, 255});
  }
  EXPECT_GT(ComputeEdgeStructure(busy)[12], ComputeEdgeStructure(plain)[12]);
}

TEST(EdgeStructureTest, QuadrantFeaturesLocalizeEdges) {
  // Edges only in the top-left quadrant.
  Image img(32, 32, Rgb{0, 0, 0});
  FillRect(img, 4, 4, 12, 12, Rgb{255, 255, 255});
  const auto f = ComputeEdgeStructure(img);
  EXPECT_GT(f[13], f[16]);  // q0 (top-left) > q3 (bottom-right)
  EXPECT_GT(f[13], 0.0);
  EXPECT_NEAR(f[16], 0.0, 1e-9);
}

TEST(EdgeStructureTest, OrientationHistogramDistinguishesDirections) {
  Image vertical(32, 32, Rgb{0, 0, 0});
  Image horizontal(32, 32, Rgb{0, 0, 0});
  for (int i = 0; i < 4; ++i) {
    FillRect(vertical, i * 8, 0, i * 8 + 4, 32, Rgb{255, 255, 255});
    FillRect(horizontal, 0, i * 8, 32, i * 8 + 4, Rgb{255, 255, 255});
  }
  const auto fv = ComputeEdgeStructure(vertical);
  const auto fh = ComputeEdgeStructure(horizontal);
  double l1 = 0.0;
  for (int b = 0; b < 12; ++b) l1 += std::fabs(fv[b] - fh[b]);
  EXPECT_GT(l1, 0.8);  // nearly disjoint orientation mass
}

TEST(EdgeStructureTest, MeanStrengthBounded) {
  Image img(32, 32, Rgb{0, 0, 0});
  FillRect(img, 16, 0, 32, 32, Rgb{255, 255, 255});
  const auto f = ComputeEdgeStructure(img);
  EXPECT_GT(f[17], 0.0);
  EXPECT_LT(f[17], 1.0);
}

TEST(EdgeStructureTest, ThresholdControlsEdgeCount) {
  Image img(32, 32, Rgb{100, 100, 100});
  FillRect(img, 16, 0, 32, 32, Rgb{115, 115, 115});  // weak edge
  const auto strict = ComputeEdgeStructure(img, /*edge_threshold=*/0.5);
  const auto lenient = ComputeEdgeStructure(img, /*edge_threshold=*/0.05);
  EXPECT_GT(lenient[12], strict[12]);
}

TEST(EdgeStructureTest, EmptyImageIsAllZero) {
  const auto f = ComputeEdgeStructure(Image());
  for (const double v : f) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace qdcbir
