#include "qdcbir/features/color_moments.h"

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/image/color.h"
#include "qdcbir/image/draw.h"

namespace qdcbir {
namespace {

TEST(ColorMomentsTest, ConstantImageHasZeroSpread) {
  Image img(16, 16, Rgb{200, 100, 50});
  const auto f = ComputeColorMoments(img);
  // stddev and skewness of each channel are zero on a constant image.
  EXPECT_NEAR(f[1], 0.0, 1e-9);
  EXPECT_NEAR(f[2], 0.0, 1e-9);
  EXPECT_NEAR(f[4], 0.0, 1e-9);
  EXPECT_NEAR(f[5], 0.0, 1e-9);
  EXPECT_NEAR(f[7], 0.0, 1e-9);
  EXPECT_NEAR(f[8], 0.0, 1e-9);
}

TEST(ColorMomentsTest, ConstantImageMeansMatchHsv) {
  Image img(8, 8, Rgb{255, 0, 0});  // pure red
  const auto f = ComputeColorMoments(img);
  EXPECT_NEAR(f[0], 0.0, 1e-9);  // hue 0 normalized
  EXPECT_NEAR(f[3], 1.0, 1e-9);  // full saturation
  EXPECT_NEAR(f[6], 1.0, 1e-9);  // full value
}

TEST(ColorMomentsTest, ValueMeanTracksBrightness) {
  Image dark(8, 8, Rgb{30, 30, 30});
  Image bright(8, 8, Rgb{220, 220, 220});
  EXPECT_LT(ComputeColorMoments(dark)[6], ComputeColorMoments(bright)[6]);
}

TEST(ColorMomentsTest, TwoToneImageHasPositiveValueSpread) {
  Image img(8, 8, Rgb{0, 0, 0});
  FillRect(img, 0, 0, 8, 4, Rgb{255, 255, 255});
  const auto f = ComputeColorMoments(img);
  EXPECT_GT(f[7], 0.4);  // value stddev near 0.5
  // Symmetric split: skewness vanishes (cube root amplifies float noise,
  // hence the loose tolerance).
  EXPECT_NEAR(f[8], 0.0, 1e-5);
}

TEST(ColorMomentsTest, SkewnessReflectsValueAsymmetry) {
  // Mostly dark with a small bright patch -> positive value skewness.
  Image img(10, 10, Rgb{10, 10, 10});
  FillRect(img, 0, 0, 2, 2, Rgb{250, 250, 250});
  const auto f = ComputeColorMoments(img);
  EXPECT_GT(f[8], 0.0);
}

TEST(ColorMomentsTest, AllFeaturesInReasonableRange) {
  Rng rng(3);
  Image img(24, 24);
  for (Rgb& p : img.pixels()) {
    p = Rgb{static_cast<std::uint8_t>(rng.UniformInt(256)),
            static_cast<std::uint8_t>(rng.UniformInt(256)),
            static_cast<std::uint8_t>(rng.UniformInt(256))};
  }
  const auto f = ComputeColorMoments(img);
  for (const double v : f) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ColorMomentsTest, DistinguishesHues) {
  Image red(8, 8, Rgb{200, 30, 30});
  Image blue(8, 8, Rgb{30, 30, 200});
  const auto fr = ComputeColorMoments(red);
  const auto fb = ComputeColorMoments(blue);
  EXPECT_GT(std::abs(fr[0] - fb[0]), 0.3);  // hue means far apart
}

}  // namespace
}  // namespace qdcbir
