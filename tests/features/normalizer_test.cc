#include "qdcbir/features/normalizer.h"

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/core/stats.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> MakeData(std::size_t n, std::size_t dim,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      v[d] = rng.Gaussian(static_cast<double>(d), 1.0 + d);
    }
    out.push_back(std::move(v));
  }
  return out;
}

TEST(NormalizerTest, UnfittedFailsPrecondition) {
  FeatureNormalizer n;
  EXPECT_FALSE(n.fitted());
  EXPECT_EQ(n.Transform(FeatureVector{1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NormalizerTest, FitRejectsEmptyAndMixedDims) {
  FeatureNormalizer n;
  EXPECT_EQ(n.Fit({}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(n.Fit({FeatureVector{1.0}, FeatureVector{1.0, 2.0}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, TransformedDataIsStandardized) {
  auto data = MakeData(500, 4, 9);
  FeatureNormalizer n;
  ASSERT_TRUE(n.Fit(data).ok());
  ASSERT_TRUE(n.TransformInPlace(data).ok());

  for (std::size_t d = 0; d < 4; ++d) {
    std::vector<double> column;
    for (const FeatureVector& v : data) column.push_back(v[d]);
    EXPECT_NEAR(Mean(column), 0.0, 1e-9);
    EXPECT_NEAR(StdDev(column), 1.0, 1e-9);
  }
}

TEST(NormalizerTest, ConstantDimensionMapsToZero) {
  std::vector<FeatureVector> data = {FeatureVector{5.0, 1.0},
                                     FeatureVector{5.0, 3.0}};
  FeatureNormalizer n;
  ASSERT_TRUE(n.Fit(data).ok());
  const FeatureVector t = n.Transform(FeatureVector{5.0, 2.0}).value();
  EXPECT_EQ(t[0], 0.0);
  EXPECT_NEAR(t[1], 0.0, 1e-9);  // 2.0 is the mean of dim 1
}

TEST(NormalizerTest, InverseTransformRoundTrips) {
  auto data = MakeData(100, 3, 11);
  FeatureNormalizer n;
  ASSERT_TRUE(n.Fit(data).ok());
  const FeatureVector original = data[7];
  const FeatureVector t = n.Transform(original).value();
  const FeatureVector back = n.InverseTransform(t).value();
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(back[d], original[d], 1e-9);
  }
}

TEST(NormalizerTest, TransformRejectsWrongDim) {
  FeatureNormalizer n;
  ASSERT_TRUE(n.Fit(MakeData(10, 3, 1)).ok());
  EXPECT_EQ(n.Transform(FeatureVector{1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, SerializationRoundTrip) {
  FeatureNormalizer n;
  ASSERT_TRUE(n.Fit(MakeData(50, 5, 13)).ok());
  const std::string blob = n.Serialize();
  StatusOr<FeatureNormalizer> restored = FeatureNormalizer::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->mean(), n.mean());
  EXPECT_EQ(restored->stddev(), n.stddev());
}

TEST(NormalizerTest, DeserializeRejectsCorruptBlobs) {
  EXPECT_FALSE(FeatureNormalizer::Deserialize("").ok());
  EXPECT_FALSE(FeatureNormalizer::Deserialize("short").ok());
  FeatureNormalizer n;
  ASSERT_TRUE(n.Fit(MakeData(10, 2, 1)).ok());
  std::string blob = n.Serialize();
  blob.pop_back();
  EXPECT_FALSE(FeatureNormalizer::Deserialize(blob).ok());
}

}  // namespace
}  // namespace qdcbir
