#include "qdcbir/obs/quality_stats.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {
namespace {

TEST(JaccardPermille, DisjointOverlappingAndIdenticalSets) {
  EXPECT_EQ(JaccardPermille({1, 2, 3}, {4, 5, 6}), 0u);
  EXPECT_EQ(JaccardPermille({1, 2, 3}, {1, 2, 3}), 1000u);
  // |{2,3}| / |{1,2,3,4}| = 2/4.
  EXPECT_EQ(JaccardPermille({1, 2, 3}, {2, 3, 4}), 500u);
}

TEST(JaccardPermille, IgnoresOrderAndDuplicates) {
  EXPECT_EQ(JaccardPermille({3, 1, 2}, {2, 3, 1}), 1000u);
  EXPECT_EQ(JaccardPermille({1, 1, 2, 2}, {2, 1}), 1000u);
}

TEST(JaccardPermille, BothEmptyIsTriviallyStable) {
  EXPECT_EQ(JaccardPermille({}, {}), 1000u);
  EXPECT_EQ(JaccardPermille({1}, {}), 0u);
}

TEST(RankChurn, CountsPositionalMismatchesPlusLengthDelta) {
  EXPECT_EQ(RankChurn({1, 2, 3}, {1, 2, 3}), 0u);
  // Positions 0 and 1 swapped.
  EXPECT_EQ(RankChurn({1, 2, 3}, {2, 1, 3}), 2u);
  // One positional mismatch plus two extra trailing entries.
  EXPECT_EQ(RankChurn({1, 2}, {1, 9, 8, 7}), 3u);
  EXPECT_EQ(RankChurn({}, {5, 6}), 2u);
}

TEST(SessionQualityTracker, SingleRoundIsTriviallyStable) {
  SessionQualityTracker tracker;
  tracker.ObserveRound({1, 2, 3}, 4);
  const SessionQuality quality = tracker.Summary();
  EXPECT_EQ(quality.rounds_observed, 1u);
  EXPECT_EQ(quality.last_jaccard_permille, 1000u);
  EXPECT_EQ(quality.mean_jaccard_permille, 1000u);
  EXPECT_EQ(quality.last_rank_churn, 0u);
  EXPECT_EQ(quality.subquery_growth, 0u);
  EXPECT_EQ(quality.outcome, SessionOutcome::kAbandoned);
}

TEST(SessionQualityTracker, TracksTransitionsAndSubqueryGrowth) {
  SessionQualityTracker tracker;
  tracker.ObserveRound({1, 2, 3, 4}, 1);
  tracker.ObserveRound({1, 2, 3, 4}, 3);   // identical: jaccard 1000
  tracker.ObserveRound({5, 6, 7, 8}, 5);   // disjoint: jaccard 0
  const SessionQuality quality = tracker.Summary();
  EXPECT_EQ(quality.rounds_observed, 3u);
  EXPECT_EQ(quality.last_jaccard_permille, 0u);
  EXPECT_EQ(quality.mean_jaccard_permille, 500u);  // (1000 + 0) / 2
  EXPECT_EQ(quality.last_rank_churn, 4u);
  EXPECT_EQ(quality.subquery_growth, 4u);  // 5 - 1
  // The identical second round reached the stability threshold.
  EXPECT_EQ(quality.rounds_to_stability, 2u);
}

TEST(SessionQualityTracker, NeverStabilizingSessionReportsZero) {
  SessionQualityTracker tracker;
  tracker.ObserveRound({1, 2}, 1);
  tracker.ObserveRound({3, 4}, 1);
  tracker.ObserveRound({5, 6}, 1);
  EXPECT_EQ(tracker.Summary().rounds_to_stability, 0u);
}

TEST(SessionQualityTracker, OutcomePrecedenceFinalizedBeatsErrored) {
  SessionQualityTracker tracker;
  tracker.ObserveRound({1}, 1);
  EXPECT_EQ(tracker.Summary().outcome, SessionOutcome::kAbandoned);
  tracker.RecordError();
  EXPECT_EQ(tracker.Summary().outcome, SessionOutcome::kErrored);
  tracker.Finalized();
  EXPECT_EQ(tracker.Summary().outcome, SessionOutcome::kFinalized);
}

TEST(SessionQualityTracker, SubqueryShrinkageFloorsAtZero) {
  SessionQualityTracker tracker;
  tracker.ObserveRound({1}, 7);
  tracker.ObserveRound({1}, 2);
  EXPECT_EQ(tracker.Summary().subquery_growth, 0u);
}

TEST(SessionOutcomeName, StableJsonNames) {
  EXPECT_STREQ(SessionOutcomeName(SessionOutcome::kFinalized), "finalized");
  EXPECT_STREQ(SessionOutcomeName(SessionOutcome::kAbandoned), "abandoned");
  EXPECT_STREQ(SessionOutcomeName(SessionOutcome::kErrored), "errored");
  EXPECT_STREQ(SessionOutcomeName(static_cast<SessionOutcome>(99)),
               "unknown");
}

TEST(PublishSessionQuality, FeedsHistogramsAndOutcomeCounters) {
  auto& registry = MetricsRegistry::Global();
  const std::uint64_t finalized_before =
      registry.GetCounter("quality.sessions.finalized").Value();
  const auto jaccard_before =
      registry.GetHistogram("quality.topk_jaccard").Snap();
  const auto precision_before =
      registry.GetHistogram("quality.oracle_precision").Snap();

  SessionQuality quality;
  quality.rounds_observed = 3;
  quality.last_jaccard_permille = 750;
  quality.mean_jaccard_permille = 800;
  quality.outcome = SessionOutcome::kFinalized;
  PublishSessionQuality(quality);  // oracle precision undefined: not recorded

  quality.oracle_precision_defined = true;
  quality.oracle_precision_permille = 900;
  PublishSessionQuality(quality);

  EXPECT_EQ(registry.GetCounter("quality.sessions.finalized").Value(),
            finalized_before + 2);
  EXPECT_EQ(registry.GetHistogram("quality.topk_jaccard").Snap().count,
            jaccard_before.count + 2);
  EXPECT_EQ(registry.GetHistogram("quality.oracle_precision").Snap().count,
            precision_before.count + 1);
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
