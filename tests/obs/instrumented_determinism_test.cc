// Observability must not disturb the engine's determinism contract: the
// same scripted QD session must return byte-identical results at 1/2/4/8
// pool lanes, with the tracer disarmed AND with it armed (tracing adds
// mutex-serialized event appends on every span — none of that may leak
// into result ordering or scoring). The same holds for index-access
// telemetry and the metrics flight recorder: ranked results AND the
// logical cost model (QdSessionStats) must be byte-identical with them on
// vs off.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/timeseries.h"
#include "qdcbir/obs/trace.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

class InstrumentedDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 20;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 500;
    options.image_width = 32;
    options.image_height = 32;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());

    RfsBuildOptions build;
    build.tree.max_entries = 40;
    build.tree.min_entries = 16;
    rfs_ = new RfsTree(RfsBuilder::Build(db_->features(), build).value());
  }
  static void TearDownTestSuite() {
    delete rfs_;
    delete db_;
  }

  static QdResult RunScriptedSession(ThreadPool* pool,
                                     QdSessionStats* stats_out = nullptr) {
    QdOptions options;
    options.seed = 1234;
    options.pool = pool;
    QdSession session(rfs_, options);
    std::vector<DisplayGroup> display = session.Start();
    for (int round = 0; round < 2; ++round) {
      std::vector<ImageId> picks;
      for (const DisplayGroup& group : display) {
        for (std::size_t i = 0; i < group.images.size() && i < 2; ++i) {
          picks.push_back(group.images[i]);
        }
      }
      display = session.Feedback(picks).value();
    }
    QdResult result = session.Finalize(60).value();
    if (stats_out != nullptr) *stats_out = session.stats();
    return result;
  }

  static const ImageDatabase* db_;
  static const RfsTree* rfs_;
};

const ImageDatabase* InstrumentedDeterminismTest::db_ = nullptr;
const RfsTree* InstrumentedDeterminismTest::rfs_ = nullptr;

void ExpectIdenticalResults(const QdResult& a, const QdResult& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    const ResultGroup& ga = a.groups[g];
    const ResultGroup& gb = b.groups[g];
    EXPECT_EQ(ga.leaf, gb.leaf);
    EXPECT_EQ(ga.search_node, gb.search_node);
    EXPECT_EQ(ga.relevant_count, gb.relevant_count);
    EXPECT_EQ(ga.ranking_score, gb.ranking_score);  // bit-exact
    ASSERT_EQ(ga.images.size(), gb.images.size());
    for (std::size_t i = 0; i < ga.images.size(); ++i) {
      EXPECT_EQ(ga.images[i].id, gb.images[i].id);
      EXPECT_EQ(ga.images[i].distance_squared, gb.images[i].distance_squared);
    }
  }
}

void ExpectIdenticalStats(const QdSessionStats& a, const QdSessionStats& b) {
  EXPECT_EQ(a.feedback_rounds, b.feedback_rounds);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.distinct_nodes_sampled, b.distinct_nodes_sampled);
  EXPECT_EQ(a.boundary_expansions, b.boundary_expansions);
  EXPECT_EQ(a.expanded_subqueries, b.expanded_subqueries);
  EXPECT_EQ(a.localized_subqueries, b.localized_subqueries);
  EXPECT_EQ(a.knn_candidates, b.knn_candidates);
  EXPECT_EQ(a.knn_nodes_visited, b.knn_nodes_visited);
}

TEST_F(InstrumentedDeterminismTest, IdenticalAcrossThreadCountsTracingOff) {
  ASSERT_FALSE(obs::Tracer::Global().enabled());
  ThreadPool pool1(1);
  const QdResult baseline = RunScriptedSession(&pool1);
  for (const std::size_t lanes : {2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    const QdResult result = RunScriptedSession(&pool);
    ExpectIdenticalResults(baseline, result);
  }
}

TEST_F(InstrumentedDeterminismTest, IdenticalAcrossThreadCountsTracingOn) {
  // Untraced baseline first, then every traced run must match it exactly:
  // arming the tracer may change timing, never results.
  ThreadPool pool1(1);
  const QdResult baseline = RunScriptedSession(&pool1);

  const std::string path =
      ::testing::TempDir() + "/instrumented_determinism_trace.json";
  std::string error;
  ASSERT_TRUE(obs::Tracer::Global().Start(path, &error)) << error;
  for (const std::size_t lanes : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    const QdResult result = RunScriptedSession(&pool);
    ExpectIdenticalResults(baseline, result);
  }
  ASSERT_TRUE(obs::Tracer::Global().Stop(&error)) << error;

  // The traced runs also must have produced a structurally valid file.
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(obs::ValidateChromeTrace(buffer.str(), &error, nullptr))
      << error;
}

TEST_F(InstrumentedDeterminismTest, IdenticalWithAccessTelemetryOnVsOff) {
  // Untracked baseline: no access sink installed, so every tap is the
  // accounting-off branch.
  ThreadPool pool1(1);
  QdSessionStats baseline_stats;
  const QdResult baseline = RunScriptedSession(&pool1, &baseline_stats);

  // A live flight recorder sampling its own registry on a tight cadence
  // runs concurrently with the accounted sessions: neither the TLS-batched
  // access taps nor the recorder's background snapshots may perturb ranked
  // results or the logical cost model.
  obs::MetricsRegistry registry;
  obs::FlightRecorder::Options recorder_options;
  recorder_options.interval_ns = 1000ull * 1000;  // 1ms
  obs::FlightRecorder recorder(recorder_options, &registry);
  recorder.Start();

  for (const std::size_t lanes : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    obs::AccessAccumulator access;
    QdSessionStats stats;
    QdResult result;
    {
      const obs::ScopedAccessAccounting accounting(&access);
      result = RunScriptedSession(&pool, &stats);
    }
    ExpectIdenticalResults(baseline, result);
    ExpectIdenticalStats(baseline_stats, stats);

    // The telemetry must actually have been on: the scripted session's
    // localized searches record per-leaf scans with distance evals.
    const std::vector<obs::LeafAccess> rows = access.Snapshot();
    ASSERT_FALSE(rows.empty()) << "access accounting captured nothing";
    obs::LeafAccessCounts totals;
    for (const obs::LeafAccess& row : rows) totals.Add(row.counts);
    EXPECT_GT(totals.scans, 0u);
    EXPECT_GT(totals.distance_evals, 0u);
  }

  recorder.Stop();
  EXPECT_GT(recorder.samples_taken(), 0u);
}

}  // namespace
}  // namespace qdcbir
