// Tests of the Chrome-trace recorder and its validator: a traced QD
// session must produce a file the validator accepts with at least one
// span per engine phase; spans straddling Start/Stop must be dropped from
// the flush; and the validator must reject structurally broken traces.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/obs/trace.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 16;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 400;
    options.image_width = 32;
    options.image_height = 32;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());

    RfsBuildOptions build;
    build.tree.max_entries = 40;
    build.tree.min_entries = 16;
    rfs_ = new RfsTree(RfsBuilder::Build(db_->features(), build).value());
  }
  static void TearDownTestSuite() {
    delete rfs_;
    delete db_;
  }

  /// One scripted QD session: two feedback rounds with a resample each,
  /// then Finalize — touching every instrumented engine phase.
  static void RunScriptedSession() {
    QdOptions options;
    options.seed = 99;
    QdSession session(rfs_, options);
    std::vector<DisplayGroup> display = session.Start();
    for (int round = 0; round < 2; ++round) {
      display = session.Resample();
      std::vector<ImageId> picks;
      for (const DisplayGroup& group : display) {
        for (std::size_t i = 0; i < group.images.size() && i < 2; ++i) {
          picks.push_back(group.images[i]);
        }
      }
      display = session.Feedback(picks).value();
    }
    ASSERT_TRUE(session.Finalize(40).ok());
  }

  static const ImageDatabase* db_;
  static const RfsTree* rfs_;
};

const ImageDatabase* TraceTest::db_ = nullptr;
const RfsTree* TraceTest::rfs_ = nullptr;

TEST_F(TraceTest, QdSessionProducesValidTraceWithAllPhases) {
  const std::string path = ::testing::TempDir() + "/qd_session_trace.json";
  Tracer& tracer = Tracer::Global();
  std::string error;
  ASSERT_TRUE(tracer.Start(path, &error)) << error;
  RunScriptedSession();
  EXPECT_GT(tracer.buffered_events(), 0u);
  ASSERT_TRUE(tracer.Stop(&error)) << error;

  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  std::map<std::string, std::size_t> begin_counts;
  ASSERT_TRUE(ValidateChromeTrace(json, &error, &begin_counts)) << error;

  // Every instrumented phase of the session must appear at least once.
  for (const char* phase :
       {"qd.round.sampling", "qd.round.descent", "qd.finalize",
        "qd.finalize.subquery", "qd.finalize.merge"}) {
    EXPECT_GE(begin_counts[phase], 1u) << "missing phase span: " << phase;
  }
}

TEST_F(TraceTest, StartWhileRunningFails) {
  const std::string path = ::testing::TempDir() + "/trace_double_start.json";
  Tracer& tracer = Tracer::Global();
  std::string error;
  ASSERT_TRUE(tracer.Start(path, &error)) << error;
  EXPECT_FALSE(tracer.Start(path, &error));
  ASSERT_TRUE(tracer.Stop(&error)) << error;
  EXPECT_FALSE(tracer.Stop(&error));  // already stopped
}

TEST_F(TraceTest, StraddlingSpansAreDroppedFromFlush) {
  const std::string path = ::testing::TempDir() + "/trace_straddle.json";
  Tracer& tracer = Tracer::Global();
  std::string error;
  ASSERT_TRUE(tracer.Start(path, &error)) << error;
  static const char* const kOrphanEnd = "straddle.pre_start";
  static const char* const kBalanced = "straddle.balanced";
  static const char* const kOpen = "straddle.still_open";
  tracer.End(kOrphanEnd);    // span began before Start — lone "E"
  tracer.Begin(kBalanced);
  tracer.End(kBalanced);
  tracer.Begin(kOpen);       // still open at Stop — lone "B"
  ASSERT_TRUE(tracer.Stop(&error)) << error;

  const std::string json = ReadFile(path);
  std::map<std::string, std::size_t> begin_counts;
  ASSERT_TRUE(ValidateChromeTrace(json, &error, &begin_counts)) << error;
  EXPECT_EQ(begin_counts["straddle.balanced"], 1u);
  EXPECT_EQ(begin_counts.count("straddle.still_open"), 0u);
  EXPECT_EQ(json.find("straddle.pre_start"), std::string::npos);
}

TEST(ValidateChromeTraceTest, AcceptsMinimalHandcraftedTrace) {
  const std::string json =
      "{\"traceEvents\":[\n"
      "{\"name\":\"a\",\"cat\":\"x\",\"ph\":\"B\",\"ts\":0.0,"
      "\"pid\":1,\"tid\":1},\n"
      "{\"name\":\"b\",\"ph\":\"B\",\"ts\":1.0,\"pid\":1,\"tid\":1},\n"
      "{\"name\":\"b\",\"ph\":\"E\",\"ts\":2.0,\"pid\":1,\"tid\":1},\n"
      "{\"name\":\"a\",\"ph\":\"E\",\"ts\":3.0,\"pid\":1,\"tid\":1}\n"
      "]}";
  std::string error;
  std::map<std::string, std::size_t> begin_counts;
  EXPECT_TRUE(ValidateChromeTrace(json, &error, &begin_counts)) << error;
  EXPECT_EQ(begin_counts["a"], 1u);
  EXPECT_EQ(begin_counts["b"], 1u);
}

TEST(ValidateChromeTraceTest, RejectsUnbalancedTrace) {
  const std::string json =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"B\",\"ts\":0.0,\"tid\":1}"
      "]}";
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace(json, &error, nullptr));
  EXPECT_NE(error.find("unbalanced"), std::string::npos) << error;
}

TEST(ValidateChromeTraceTest, RejectsMismatchedNesting) {
  const std::string json =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"B\",\"ts\":0.0,\"tid\":1},"
      "{\"name\":\"b\",\"ph\":\"B\",\"ts\":1.0,\"tid\":1},"
      "{\"name\":\"a\",\"ph\":\"E\",\"ts\":2.0,\"tid\":1},"
      "{\"name\":\"b\",\"ph\":\"E\",\"ts\":3.0,\"tid\":1}"
      "]}";
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace(json, &error, nullptr));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;
}

TEST(ValidateChromeTraceTest, RejectsMissingRequiredField) {
  const std::string json =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"B\",\"ts\":0.0}"  // no tid
      "]}";
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace(json, &error, nullptr));
  EXPECT_NE(error.find("tid"), std::string::npos) << error;
}

TEST(ValidateChromeTraceTest, RejectsRegressingTimestamps) {
  const std::string json =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"B\",\"ts\":5.0,\"tid\":1},"
      "{\"name\":\"a\",\"ph\":\"E\",\"ts\":1.0,\"tid\":1}"
      "]}";
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace(json, &error, nullptr));
  EXPECT_NE(error.find("regress"), std::string::npos) << error;
}

TEST(ValidateChromeTraceTest, RejectsMissingEventsArray) {
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace("{\"foo\":[]}", &error, nullptr));
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
