#include "qdcbir/obs/wide_event.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace qdcbir {
namespace obs {
namespace {

std::string UniquePath(const std::string& stem) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "qdcbir_wide_event";
  std::filesystem::create_directories(dir);
  return (dir / (stem + ".jsonl")).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(WideEventBuilder, RendersTypedFieldsInInsertionOrder) {
  const std::string json = WideEventBuilder()
                               .Add("event", "session")
                               .Add("rounds", std::uint64_t{3})
                               .Add("delta", std::int64_t{-2})
                               .Add("ratio", 1.5)
                               .Add("ok", true)
                               .Build();
  EXPECT_EQ(json,
            "{\"event\":\"session\",\"rounds\":3,\"delta\":-2,"
            "\"ratio\":1.5,\"ok\":true}");
}

TEST(WideEventBuilder, EscapesStringsAndControlBytes) {
  const std::string json =
      WideEventBuilder().Add("label", "a\"b\\c\nd\x01").Build();
  EXPECT_EQ(json, "{\"label\":\"a\\\"b\\\\c\\nd\\u0001\"}");
}

TEST(WideEventBuilder, EmptyEventIsAnEmptyObject) {
  EXPECT_EQ(WideEventBuilder().Build(), "{}");
}

TEST(WideEventSink, AppendsOneLinePerEvent) {
  const std::string path = UniquePath("append");
  std::filesystem::remove(path);
  WideEventSink sink({path, 1 << 20});
  sink.Emit("{\"a\":1}");
  sink.Emit("{\"b\":2}");
  EXPECT_EQ(sink.emitted(), 2u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(ReadAll(path), "{\"a\":1}\n{\"b\":2}\n");
}

TEST(WideEventSink, RotatesPastTheSizeCap) {
  const std::string path = UniquePath("rotate");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  const std::string event(40, 'x');  // 41 bytes per line with the newline
  WideEventSink sink({path, 64});
  sink.Emit(event);  // live file: 41 bytes
  sink.Emit(event);  // would reach 82 > 64: rotates first
  EXPECT_EQ(sink.rotations(), 1u);
  EXPECT_EQ(sink.emitted(), 2u);
  EXPECT_EQ(ReadAll(path), event + "\n");
  EXPECT_EQ(ReadAll(sink.rotated_path()), event + "\n");
  // The next rollover replaces the previous one (bounded disk usage).
  sink.Emit(event);
  EXPECT_EQ(sink.rotations(), 2u);
  EXPECT_EQ(ReadAll(sink.rotated_path()), event + "\n");
}

TEST(WideEventSink, ResumesLiveFileSizeAcrossRestart) {
  const std::string path = UniquePath("resume");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  const std::string event(40, 'x');
  {
    WideEventSink sink({path, 64});
    sink.Emit(event);
  }
  WideEventSink resumed({path, 64});
  resumed.Emit(event);  // 41 existing + 41 new > 64: rotation survives restart
  EXPECT_EQ(resumed.rotations(), 1u);
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
}

TEST(WideEventSink, CountsDropsInsteadOfFailing) {
  WideEventSink sink({"/nonexistent-dir/qdcbir/events.jsonl", 1 << 20});
  sink.Emit("{\"a\":1}");
  sink.Emit("{\"b\":2}");
  EXPECT_EQ(sink.emitted(), 0u);
  EXPECT_EQ(sink.dropped(), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
