// HTTP layer tests: request parsing (limits, malformed inputs, pipelined
// framing), response serialization, and a live loopback server exercising
// keep-alive, pipelining, bad methods, oversized headers, 404/index
// routing, and concurrent requests through a pool executor.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/http_server.h"

namespace qdcbir {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Parser

TEST(HttpParseTest, ParsesSimpleGet) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string raw =
      "GET /metrics?format=prom HTTP/1.1\r\nHost: x\r\n"
      "Accept: text/plain\r\n\r\n";
  ASSERT_EQ(ParseHttpRequest(raw, &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.query, "format=prom");
  EXPECT_EQ(request.version, "HTTP/1.1");
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("HOST"), "x");
  EXPECT_EQ(request.FindHeader("absent"), nullptr);
}

TEST(HttpParseTest, ParsesPostBody) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string raw =
      "POST /api/query HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"seed\":1}X";
  ASSERT_EQ(ParseHttpRequest(raw, &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(request.body, "{\"seed\":1}X");
  EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParseTest, IncompleteUntilBodyArrives) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string head =
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
  EXPECT_EQ(ParseHttpRequest(head, &request, &consumed),
            HttpParseStatus::kIncomplete);
  EXPECT_EQ(ParseHttpRequest(head + "cde", &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(request.body, "abcde");
}

TEST(HttpParseTest, PipelinedRequestsConsumeOneAtATime) {
  const std::string raw =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  HttpRequest request;
  std::size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(raw, &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(request.target, "/a");
  const std::string rest = raw.substr(consumed);
  ASSERT_EQ(ParseHttpRequest(rest, &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(consumed, rest.size());
}

TEST(HttpParseTest, RejectsMalformedRequests) {
  HttpRequest request;
  std::size_t consumed = 0;
  for (const char* raw : {
           "get /x HTTP/1.1\r\n\r\n",          // lowercase method
           "GET/x HTTP/1.1\r\n\r\n",           // missing space
           "GET /x HTTP/1.1 extra\r\n\r\n",    // extra token
           "GET x HTTP/1.1\r\n\r\n",           // target not absolute
           "GET /x HTTP/2.0\r\n\r\n",          // unsupported version
           "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
           "GET /x HTTP/1.1\r\nBad Header: v\r\n\r\n",
           "GET /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
           "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       }) {
    EXPECT_EQ(ParseHttpRequest(raw, &request, &consumed),
              HttpParseStatus::kBadRequest)
        << raw;
  }
}

TEST(HttpParseTest, EnforcesHeaderLimit) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string big_header = "GET / HTTP/1.1\r\nX-Pad: " +
                                 std::string(100, 'a') + "\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(big_header, &request, &consumed, limits),
            HttpParseStatus::kHeaderTooLarge);
  // An incomplete header that already exceeds the cap is rejected too —
  // the connection must not buffer unboundedly waiting for \r\n\r\n.
  const std::string endless = "GET / HTTP/1.1\r\nX-Pad: " +
                              std::string(100, 'a');
  EXPECT_EQ(ParseHttpRequest(endless, &request, &consumed, limits),
            HttpParseStatus::kHeaderTooLarge);
}

TEST(HttpParseTest, EnforcesBodyLimit) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpRequest request;
  std::size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest(
                "POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
                &request, &consumed, limits),
            HttpParseStatus::kBodyTooLarge);
}

TEST(HttpSerializeTest, WritesStatusLineAndFraming) {
  const std::string keep = SerializeHttpResponse(
      HttpResponse{200, "application/json", "{}"}, /*keep_alive=*/true);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);
  const std::string close = SerializeHttpResponse(
      HttpResponse{404, "text/plain", "no"}, /*keep_alive=*/false);
  EXPECT_NE(close.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live server

/// A minimal blocking test client.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until `n` complete HTTP responses arrived (Content-Length
  /// framed) or the peer closed.
  std::string ReadResponses(std::size_t n) {
    std::string buffer;
    char chunk[4096];
    while (CountResponses(buffer) < n) {
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(got));
    }
    return buffer;
  }

  static std::size_t CountResponses(const std::string& buffer) {
    std::size_t count = 0;
    std::size_t pos = 0;
    while (true) {
      const std::size_t head_end = buffer.find("\r\n\r\n", pos);
      if (head_end == std::string::npos) return count;
      const std::string head = buffer.substr(pos, head_end - pos);
      const std::size_t cl = head.find("Content-Length: ");
      std::size_t body = 0;
      if (cl != std::string::npos) {
        body = static_cast<std::size_t>(
            std::strtoull(head.c_str() + cl + 16, nullptr, 10));
      }
      if (buffer.size() < head_end + 4 + body) return count;
      pos = head_end + 4 + body;
      ++count;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer(HttpServer::Options options = {}) {
    server_ = std::make_unique<HttpServer>(std::move(options));
    server_->Handle("/ping", [](const HttpRequest&) {
      return HttpResponse{200, "text/plain", "pong\n"};
    });
    server_->Handle("/echo", [](const HttpRequest& request) {
      return HttpResponse{200, "text/plain", request.body};
    });
    server_->Handle("/slow", [this](const HttpRequest&) {
      in_flight_.fetch_add(1);
      while (hold_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      in_flight_.fetch_sub(1);
      return HttpResponse{200, "text/plain", "done\n"};
    });
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  std::unique_ptr<HttpServer> server_;
  std::atomic<bool> hold_{false};
  std::atomic<int> in_flight_{0};
};

TEST_F(HttpServerTest, ServesAndKeepsAlive) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /ping HTTP/1.1\r\n\r\n");
  std::string reply = client.ReadResponses(1);
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("pong"), std::string::npos);
  // Same connection, second request.
  client.Send("POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  reply = client.ReadResponses(1);
  EXPECT_NE(reply.find("hello"), std::string::npos);
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send(
      "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nfirst"
      "POST /echo HTTP/1.1\r\nContent-Length: 6\r\n\r\nsecond"
      "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string reply = client.ReadResponses(3);
  EXPECT_EQ(TestClient::CountResponses(reply), 3u);
  const std::size_t first = reply.find("first");
  const std::size_t second = reply.find("second");
  const std::size_t pong = reply.find("pong");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(pong, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, pong);
}

TEST_F(HttpServerTest, BadMethodAnswers405) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("DELETE /ping HTTP/1.1\r\n\r\n");
  EXPECT_NE(client.ReadResponses(1).find("405"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedRequestAnswers400AndCloses) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("not-a-request\r\n\r\n");
  const std::string reply = client.ReadResponses(1);
  EXPECT_NE(reply.find("400 Bad Request"), std::string::npos);
  EXPECT_NE(reply.find("Connection: close"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedHeaderAnswers431) {
  HttpServer::Options options;
  options.limits.max_header_bytes = 256;
  StartServer(std::move(options));
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /ping HTTP/1.1\r\nX-Pad: " + std::string(1024, 'a') +
              "\r\n\r\n");
  EXPECT_NE(client.ReadResponses(1).find("431"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedBodyAnswers413) {
  HttpServer::Options options;
  options.limits.max_body_bytes = 64;
  StartServer(std::move(options));
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("POST /echo HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_NE(client.ReadResponses(1).find("413"), std::string::npos);
}

TEST_F(HttpServerTest, UnknownPathAnswers404AndRootListsEndpoints) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(client.ReadResponses(1).find("404"), std::string::npos);
  client.Send("GET / HTTP/1.1\r\n\r\n");
  const std::string index = client.ReadResponses(1);
  EXPECT_NE(index.find("/ping"), std::string::npos);
  EXPECT_NE(index.find("/echo"), std::string::npos);
}

TEST_F(HttpServerTest, HeadOmitsBody) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("HEAD /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
  // HEAD responses carry Content-Length but no body, so the framing-aware
  // reader never sees a "complete" response; it returns what arrived when
  // the server honors Connection: close.
  const std::string reply = client.ReadResponses(1);
  EXPECT_NE(reply.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(reply.find("pong"), std::string::npos);
}

TEST_F(HttpServerTest, PoolExecutorHandlesConcurrentConnections) {
  ThreadPool pool(4);
  HttpServer::Options options;
  options.executor = [&pool](std::function<void()> task) {
    pool.Post(std::move(task));
  };
  hold_.store(true);
  StartServer(std::move(options));

  // Two connections park inside /slow; a third must still be served —
  // proof that connections are dispatched concurrently, not serialized on
  // the accept thread.
  TestClient slow1(server_->port()), slow2(server_->port());
  ASSERT_TRUE(slow1.connected());
  ASSERT_TRUE(slow2.connected());
  slow1.Send("GET /slow HTTP/1.1\r\n\r\n");
  slow2.Send("GET /slow HTTP/1.1\r\n\r\n");
  while (in_flight_.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  TestClient fast(server_->port());
  ASSERT_TRUE(fast.connected());
  fast.Send("GET /ping HTTP/1.1\r\n\r\n");
  EXPECT_NE(fast.ReadResponses(1).find("pong"), std::string::npos);

  hold_.store(false);
  EXPECT_NE(slow1.ReadResponses(1).find("done"), std::string::npos);
  EXPECT_NE(slow2.ReadResponses(1).find("done"), std::string::npos);
  server_->Stop();
}

TEST_F(HttpServerTest, StopDrainsOpenConnections) {
  ThreadPool pool(4);
  HttpServer::Options options;
  options.executor = [&pool](std::function<void()> task) {
    pool.Post(std::move(task));
  };
  StartServer(std::move(options));
  // An idle keep-alive connection is parked in recv; Stop must shut it
  // down and return promptly rather than waiting out the recv timeout.
  TestClient idle(server_->port());
  ASSERT_TRUE(idle.connected());
  idle.Send("GET /ping HTTP/1.1\r\n\r\n");
  EXPECT_NE(idle.ReadResponses(1).find("pong"), std::string::npos);
  server_->Stop();
  EXPECT_FALSE(server_->serving());
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
