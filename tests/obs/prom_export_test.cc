// Prometheus exposition tests: name sanitization, rendering of the three
// metric kinds, validator acceptance of the renderer's own output (for a
// local registry AND for every metric registered in the global registry),
// and validator rejection of duplicate families, interleaved families, and
// non-monotonic cumulative buckets.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/prom_export.h"

namespace qdcbir {
namespace obs {
namespace {

TEST(PrometheusNameTest, SanitizesAndPrefixes) {
  EXPECT_EQ(PrometheusName("pool.task.wait_ns"), "qdcbir_pool_task_wait_ns");
  EXPECT_EQ(PrometheusName("io.load.bytes"), "qdcbir_io_load_bytes");
  EXPECT_EQ(PrometheusName("span.qd.finalize"), "qdcbir_span_qd_finalize");
  EXPECT_EQ(PrometheusName("weird-name!x"), "qdcbir_weird_name_x");
}

TEST(PromExportTest, RendersCounterGaugeHistogram) {
  MetricsRegistry registry;
  registry.GetCounter("test.requests", "Requests served").Add(3);
  Gauge& gauge = registry.GetGauge("test.depth", "Queue depth");
  gauge.Add(5);
  gauge.Add(-2);
  Histogram& histogram = registry.GetHistogram("test.latency_ns", "Latency");
  histogram.Record(10);
  histogram.Record(1000);

  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE qdcbir_test_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_test_requests 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qdcbir_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("qdcbir_test_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qdcbir_test_depth_highwater gauge"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_test_depth_highwater 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qdcbir_test_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_test_latency_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_test_latency_ns_count 2"), std::string::npos);
  // The help string and the inferred unit reach the HELP line.
  EXPECT_NE(text.find("# HELP qdcbir_test_latency_ns Latency "
                      "(unit: nanoseconds)"),
            std::string::npos);

  std::string error;
  std::map<std::string, double> samples;
  ASSERT_TRUE(ValidatePrometheusText(text, &error, &samples)) << error;
  EXPECT_DOUBLE_EQ(samples["qdcbir_test_requests"], 3.0);
  EXPECT_DOUBLE_EQ(samples["qdcbir_test_latency_ns_count"], 2.0);
}

TEST(PromExportTest, EveryGlobalRegistrationRendersAValidTypeLine) {
  // Touch at least one metric of every module that registers lazily, so
  // the global registry holds a representative population.
  MetricsRegistry& registry = MetricsRegistry::Global();
  { ThreadPool pool(2); pool.ParallelFor(0, 8, [](std::size_t) {}); }
  registry.SpanHistogram("prom_export_test").Record(1);

  const std::string text = RenderPrometheusText(registry);
  std::string error;
  std::map<std::string, double> samples;
  ASSERT_TRUE(ValidatePrometheusText(text, &error, &samples)) << error;

  const MetricsRegistry::RegistrySnapshot snapshot = registry.Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    EXPECT_NE(text.find("# TYPE " + prom + " counter\n"), std::string::npos)
        << "counter " << name << " missing its TYPE line";
    EXPECT_TRUE(samples.count(prom)) << name;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    EXPECT_NE(text.find("# TYPE " + prom + " gauge\n"), std::string::npos)
        << "gauge " << name << " missing its TYPE line";
    EXPECT_NE(text.find("# TYPE " + prom + "_highwater gauge\n"),
              std::string::npos)
        << "gauge " << name << " missing its highwater family";
  }
  for (const auto& [name, value] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    EXPECT_NE(text.find("# TYPE " + prom + " histogram\n"), std::string::npos)
        << "histogram " << name << " missing its TYPE line";
    EXPECT_TRUE(samples.count(prom + "_count")) << name;
  }
}

TEST(PromExportTest, HistogramBucketsAreCumulativeAndClosed) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test.h_ns", "h");
  for (std::uint64_t v = 1; v < 100000; v *= 3) histogram.Record(v);
  const std::string text = RenderPrometheusText(registry);
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error;
}

TEST(PromValidatorTest, RejectsDuplicateFamily) {
  const std::string text =
      "# TYPE qdcbir_a counter\nqdcbir_a 1\n"
      "# TYPE qdcbir_b counter\nqdcbir_b 1\n"
      "# TYPE qdcbir_a counter\nqdcbir_a 2\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
  EXPECT_NE(error.find("qdcbir_a"), std::string::npos) << error;
}

TEST(PromValidatorTest, RejectsInterleavedFamilies) {
  const std::string text =
      "# TYPE qdcbir_a counter\n"
      "# TYPE qdcbir_b counter\n"
      "qdcbir_b 1\n"
      "qdcbir_a 1\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

TEST(PromValidatorTest, RejectsNonMonotonicCumulativeBuckets) {
  const std::string text =
      "# TYPE qdcbir_h histogram\n"
      "qdcbir_h_bucket{le=\"10\"} 5\n"
      "qdcbir_h_bucket{le=\"20\"} 3\n"
      "qdcbir_h_bucket{le=\"+Inf\"} 3\n"
      "qdcbir_h_sum 40\n"
      "qdcbir_h_count 3\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
  EXPECT_NE(error.find("cumulative"), std::string::npos) << error;
}

TEST(PromValidatorTest, RejectsDecreasingBucketBounds) {
  const std::string text =
      "# TYPE qdcbir_h histogram\n"
      "qdcbir_h_bucket{le=\"20\"} 1\n"
      "qdcbir_h_bucket{le=\"10\"} 2\n"
      "qdcbir_h_bucket{le=\"+Inf\"} 2\n"
      "qdcbir_h_sum 12\n"
      "qdcbir_h_count 2\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

TEST(PromValidatorTest, RejectsMissingInfBucket) {
  const std::string text =
      "# TYPE qdcbir_h histogram\n"
      "qdcbir_h_bucket{le=\"10\"} 1\n"
      "qdcbir_h_sum 5\n"
      "qdcbir_h_count 1\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

TEST(PromValidatorTest, RejectsSampleWithoutType) {
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText("qdcbir_orphan 1\n", &error));
}

TEST(PromValidatorTest, AcceptsEmptyInput) {
  std::string error;
  std::map<std::string, double> samples;
  EXPECT_TRUE(ValidatePrometheusText("", &error, &samples));
  EXPECT_TRUE(samples.empty());
}

TEST(PromExemplarTest, RendersExemplarOnMatchingBucketAndValidates) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test.lat_ns", "latency");
  histogram.Record(12345);
  const std::string trace_id = "0123456789abcdef0123456789abcdef";
  registry.RecordExemplar("test.lat_ns", 12345, trace_id);

  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# {trace_id=\"" + trace_id + "\"} 12345"),
            std::string::npos)
      << text;

  std::string error;
  std::map<std::string, double> samples;
  std::vector<std::string> exemplar_ids;
  ASSERT_TRUE(ValidatePrometheusText(text, &error, &samples, &exemplar_ids))
      << error;
  ASSERT_EQ(exemplar_ids.size(), 1u);
  EXPECT_EQ(exemplar_ids[0], trace_id);
}

TEST(PromExemplarTest, LatestExemplarPerBucketWins) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test.lat2_ns", "latency");
  histogram.Record(100);
  histogram.Record(101);
  registry.RecordExemplar("test.lat2_ns", 100, std::string(32, 'a'));
  registry.RecordExemplar("test.lat2_ns", 101, std::string(32, 'b'));
  const std::string text = RenderPrometheusText(registry);
  EXPECT_EQ(text.find(std::string(32, 'a')), std::string::npos);
  EXPECT_NE(text.find(std::string(32, 'b')), std::string::npos);
}

TEST(PromExemplarTest, EmptyTraceIdRecordsNothing) {
  MetricsRegistry registry;
  registry.GetHistogram("test.lat3_ns", "latency").Record(7);
  registry.RecordExemplar("test.lat3_ns", 7, "");
  EXPECT_EQ(RenderPrometheusText(registry).find(" # {"), std::string::npos);
}

TEST(PromValidatorTest, RejectsExemplarOnNonBucketSample) {
  const std::string text =
      "# TYPE qdcbir_c counter\n"
      "qdcbir_c 1 # {trace_id=\"0123456789abcdef0123456789abcdef\"} 1\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
  EXPECT_NE(error.find("exemplar"), std::string::npos) << error;
}

TEST(PromValidatorTest, RejectsMalformedExemplarTraceId) {
  // Too short, uppercase, and non-hex ids must all fail.
  for (const std::string& bad :
       {std::string("abc"), std::string(32, 'A'), std::string(32, 'g')}) {
    const std::string text =
        "# TYPE qdcbir_h histogram\n"
        "qdcbir_h_bucket{le=\"10\"} 1 # {trace_id=\"" + bad + "\"} 5\n"
        "qdcbir_h_bucket{le=\"+Inf\"} 1\n"
        "qdcbir_h_sum 5\n"
        "qdcbir_h_count 1\n";
    std::string error;
    EXPECT_FALSE(ValidatePrometheusText(text, &error)) << bad;
  }
}

TEST(PromEscapingTest, HelpTextEscapesBackslashAndNewline) {
  EXPECT_EQ(EscapeHelpText("plain help"), "plain help");
  EXPECT_EQ(EscapeHelpText("path C:\\tmp"), "path C:\\\\tmp");
  EXPECT_EQ(EscapeHelpText("line one\nline two"), "line one\\nline two");
  // HELP lines keep double quotes literal per the exposition format.
  EXPECT_EQ(EscapeHelpText("a \"quoted\" word"), "a \"quoted\" word");
  EXPECT_EQ(EscapeHelpText("\\n is not a newline\n"),
            "\\\\n is not a newline\\n");
}

TEST(PromEscapingTest, LabelValuesAlsoEscapeQuotes) {
  EXPECT_EQ(EscapeLabelValue("abc123"), "abc123");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b\nc"), "a\\\\b\\nc");
}

TEST(PromEscapingTest, HelpWithEdgeCaseBytesRendersAndValidates) {
  // A help string carrying every character the format makes special must
  // come out as one physical, parseable HELP line.
  MetricsRegistry registry;
  registry
      .GetCounter("test.tricky",
                  "back\\slash, \"quotes\",\nand a newline")
      .Add(1);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(
      text.find("# HELP qdcbir_test_tricky "
                "back\\\\slash, \"quotes\",\\nand a newline\n"),
      std::string::npos)
      << text;
  std::string error;
  std::map<std::string, double> samples;
  ASSERT_TRUE(ValidatePrometheusText(text, &error, &samples)) << error;
  EXPECT_DOUBLE_EQ(samples["qdcbir_test_tricky"], 1.0);
}

TEST(PromExportTest, AccessAndHistoryFamiliesRenderAndValidate) {
  // The /metrics surface for the index-access telemetry: label-free
  // access.* and history.* rollups from the registry, plus the labeled
  // per-leaf index.leaf.* families appended after them. The combined
  // document must be one valid exposition.
  MetricsRegistry registry;
  registry.GetCounter("access.leaf.scans", "Leaf scans across sessions")
      .Add(12);
  registry
      .GetCounter("access.leaf.distance_evals", "Distance evals in leaf scans")
      .Add(400);
  registry.GetCounter("access.cache.hits", "Leaf scans served from cache")
      .Add(3);
  registry.GetCounter("history.samples.taken", "Recorder samples").Add(9);
  registry.GetGauge("index.tree.leaves", "RFS leaf count").Set(17);

  std::vector<LeafAccess> rows;
  rows.push_back({3, {5, 100, 800, 1, 4}});
  rows.push_back({kTableScanLeaf, {2, 900, 7200, 0, 2}});
  const std::string text =
      RenderPrometheusText(registry) + RenderIndexLeafPrometheusText(rows, 8);

  std::string error;
  std::map<std::string, double> samples;
  ASSERT_TRUE(ValidatePrometheusText(text, &error, &samples)) << error;
  EXPECT_DOUBLE_EQ(samples["qdcbir_access_leaf_scans"], 12.0);
  EXPECT_DOUBLE_EQ(samples["qdcbir_history_samples_taken"], 9.0);
  EXPECT_DOUBLE_EQ(samples["qdcbir_index_tree_leaves"], 17.0);
  EXPECT_NE(text.find("# TYPE qdcbir_access_leaf_scans counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP qdcbir_access_leaf_scans"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qdcbir_index_leaf_scans counter"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_index_leaf_scans{leaf=\"3\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_index_leaf_scans{leaf=\"table\"} 2"),
            std::string::npos);
}

TEST(HistogramBucketBoundsTest, UpperBoundsMatchBucketOf) {
  // Every bucket's upper bound must map back into that bucket, and the
  // next integer must map past it — the exposition's `le` labels are only
  // correct if the bound is tight.
  for (std::size_t bucket = 0; bucket < 200; ++bucket) {
    const std::uint64_t bound = Histogram::BucketUpperBound(bucket);
    EXPECT_EQ(Histogram::BucketOf(bound), bucket) << "bucket " << bucket;
    EXPECT_GT(Histogram::BucketOf(bound + 1), bucket) << "bucket " << bucket;
  }
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
