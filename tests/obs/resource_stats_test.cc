#include "qdcbir/obs/resource_stats.h"

#include <gtest/gtest.h>

#include <cstddef>

#include "qdcbir/core/thread_pool.h"

namespace qdcbir {
namespace obs {
namespace {

TEST(ResourceStatsTest, TapsAreNoOpsWithoutAccumulator) {
  ASSERT_EQ(CurrentResourceAccumulator(), nullptr);
  CountDistanceEvals(10);
  CountFeatureBytes(100);
  CountLeafVisits(1);
  CountTileGathers(1);
  CountContainerAlloc(64);
  // No sink: nothing is retained anywhere, and a later scope must not
  // inherit stale deltas.
  ResourceAccumulator accumulator;
  {
    const ScopedResourceAccounting scope(&accumulator);
  }
  EXPECT_TRUE(accumulator.Snapshot().IsZero());
}

TEST(ResourceStatsTest, ScopeCollectsAndMergesAtExit) {
  ResourceAccumulator accumulator;
  {
    const ScopedResourceAccounting scope(&accumulator);
    EXPECT_EQ(CurrentResourceAccumulator(), &accumulator);
    CountDistanceEvals(5);
    CountDistanceEvals(7);
    CountFeatureBytes(1024);
    CountLeafVisits(3);
    CountTileGathers(2);
    CountContainerAlloc(256);
    CountContainerAlloc(128);
    // Deltas are batched thread-locally; the sink sees them at scope exit.
    EXPECT_TRUE(accumulator.Snapshot().IsZero());
  }
  const ResourceUsage usage = accumulator.Snapshot();
  EXPECT_EQ(usage.distance_evals, 12u);
  EXPECT_EQ(usage.feature_bytes, 1024u);
  EXPECT_EQ(usage.leaves_visited, 3u);
  EXPECT_EQ(usage.tiles_gathered, 2u);
  EXPECT_EQ(usage.container_allocs, 2u);
  EXPECT_EQ(usage.alloc_bytes, 384u);
  EXPECT_EQ(CurrentResourceAccumulator(), nullptr);
}

TEST(ResourceStatsTest, FlushPublishesMidScope) {
  ResourceAccumulator accumulator;
  {
    const ScopedResourceAccounting scope(&accumulator);
    CountDistanceEvals(9);
    FlushResourceAccounting();
    EXPECT_EQ(accumulator.Snapshot().distance_evals, 9u);
    CountDistanceEvals(1);
  }
  // Flush zeroed the local deltas, so the scope-exit merge adds only the
  // post-flush tally — nothing is double-counted.
  EXPECT_EQ(accumulator.Snapshot().distance_evals, 10u);
}

TEST(ResourceStatsTest, NestedScopesIsolateAndRestore) {
  ResourceAccumulator outer;
  ResourceAccumulator inner;
  {
    const ScopedResourceAccounting outer_scope(&outer);
    CountDistanceEvals(1);
    {
      const ScopedResourceAccounting inner_scope(&inner);
      CountDistanceEvals(100);
    }
    // The inner scope neither leaked its counts to the outer sink nor
    // clobbered the outer scope's pending deltas.
    CountDistanceEvals(2);
  }
  EXPECT_EQ(outer.Snapshot().distance_evals, 3u);
  EXPECT_EQ(inner.Snapshot().distance_evals, 100u);
}

TEST(ResourceStatsTest, NullScopeDisablesAccounting) {
  ResourceAccumulator accumulator;
  {
    const ScopedResourceAccounting scope(&accumulator);
    {
      const ScopedResourceAccounting off(nullptr);
      EXPECT_EQ(CurrentResourceAccumulator(), nullptr);
      CountDistanceEvals(1000);
    }
    CountDistanceEvals(1);
  }
  EXPECT_EQ(accumulator.Snapshot().distance_evals, 1u);
}

TEST(ResourceStatsTest, AccumulatorCrossesThreadPool) {
  ThreadPool pool(4);
  ResourceAccumulator accumulator;
  {
    const ScopedResourceAccounting scope(&accumulator);
    // Iterations run on workers and (by participation) the caller; each
    // must inherit the enqueuer's sink, like trace context.
    pool.ParallelFor(0, 100, [](std::size_t) {
      CountDistanceEvals(1);
      CountFeatureBytes(8);
    });
  }
  const ResourceUsage usage = accumulator.Snapshot();
  EXPECT_EQ(usage.distance_evals, 100u);
  EXPECT_EQ(usage.feature_bytes, 800u);
}

TEST(ResourceStatsTest, NestedParallelForStillSumsOnce) {
  ThreadPool pool(4);
  ResourceAccumulator accumulator;
  {
    const ScopedResourceAccounting scope(&accumulator);
    pool.ParallelFor(0, 4, [&pool](std::size_t) {
      pool.ParallelFor(0, 25, [](std::size_t) { CountLeafVisits(1); });
    });
  }
  EXPECT_EQ(accumulator.Snapshot().leaves_visited, 100u);
}

TEST(ResourceStatsTest, UsageAddAndIsZero) {
  ResourceUsage a;
  EXPECT_TRUE(a.IsZero());
  ResourceUsage b;
  b.distance_evals = 1;
  b.alloc_bytes = 7;
  a.Add(b);
  a.Add(b);
  EXPECT_FALSE(a.IsZero());
  EXPECT_EQ(a.distance_evals, 2u);
  EXPECT_EQ(a.alloc_bytes, 14u);
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
