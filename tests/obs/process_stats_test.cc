#include "qdcbir/obs/process_stats.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/prom_export.h"

namespace qdcbir {
namespace obs {
namespace {

TEST(ProcessStatsTest, ReadsPlausibleValuesFromProcfs) {
#if !defined(__linux__)
  GTEST_SKIP() << "procfs is Linux-only";
#else
  const ProcessStats stats = ReadProcessStats();
  ASSERT_TRUE(stats.valid);
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_GE(stats.virtual_bytes, stats.resident_bytes);
  EXPECT_GE(stats.open_fds, 3u);  // stdin/stdout/stderr at minimum
  EXPECT_GE(stats.num_threads, 1u);
  EXPECT_GE(stats.cpu_user_seconds, 0.0);
  EXPECT_GE(stats.cpu_system_seconds, 0.0);
  // Started after 2020-01-01, before the far future.
  EXPECT_GT(stats.start_time_unix_seconds, 1577836800.0);
  EXPECT_LT(stats.start_time_unix_seconds, 4102444800.0);
#endif
}

TEST(ProcessStatsTest, RenderIsValidPrometheusExposition) {
  ProcessStats stats;
  stats.valid = true;
  stats.cpu_user_seconds = 1.25;
  stats.cpu_system_seconds = 0.5;
  stats.resident_bytes = 123 << 20;
  stats.virtual_bytes = 456 << 20;
  stats.open_fds = 17;
  stats.num_threads = 9;
  stats.start_time_unix_seconds = 1700000000.0;
  const std::string text = RenderProcessMetricsText(stats);
  std::string error;
  std::map<std::string, double> samples;
  std::vector<std::string> exemplars;
  ASSERT_TRUE(ValidatePrometheusText(text, &error, &samples, &exemplars))
      << error << "\n" << text;
  EXPECT_DOUBLE_EQ(samples.at("process_cpu_seconds_total"), 1.75);
  EXPECT_DOUBLE_EQ(samples.at("process_resident_memory_bytes"),
                   static_cast<double>(123 << 20));
  EXPECT_DOUBLE_EQ(samples.at("process_virtual_memory_bytes"),
                   static_cast<double>(456 << 20));
  EXPECT_DOUBLE_EQ(samples.at("process_open_fds"), 17.0);
  EXPECT_DOUBLE_EQ(samples.at("process_threads"), 9.0);
  EXPECT_DOUBLE_EQ(samples.at("process_start_time_seconds"), 1700000000.0);
}

TEST(ProcessStatsTest, InvalidStatsRenderEmpty) {
  ProcessStats stats;
  stats.valid = false;
  EXPECT_EQ(RenderProcessMetricsText(stats), "");
}

TEST(ProcessStatsTest, AppendedAfterRegistryExpositionStaysValid) {
  // The /metrics handler concatenates the registry exposition and the
  // process block; the combined document must satisfy the same validator
  // the CI gate runs (no duplicate or interleaved families).
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("process.stats.test.counter",
                      "ensures the registry half is non-empty")
      .Add(1);
  const ProcessStats stats = ReadProcessStats();
  std::string text = RenderPrometheusText(registry);
  text += RenderProcessMetricsText(stats);
  std::string error;
  std::map<std::string, double> samples;
  std::vector<std::string> exemplars;
  ASSERT_TRUE(ValidatePrometheusText(text, &error, &samples, &exemplars))
      << error;
  EXPECT_TRUE(samples.count("qdcbir_process_stats_test_counter"));
  if (stats.valid) {
    EXPECT_TRUE(samples.count("process_cpu_seconds_total"));
    EXPECT_TRUE(samples.count("process_start_time_seconds"));
  }
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
