// Flight-recorder contract: deterministic delta/rate math over an injected
// clock and a private registry, counter-reset handling, ring and series
// table bounds, event-mark windowing, and the /historyz JSON shapes.

#include "qdcbir/obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {
namespace {

constexpr std::uint64_t kSecond = 1000ull * 1000 * 1000;

FlightRecorder::Options SmallOptions() {
  FlightRecorder::Options options;
  options.interval_ns = kSecond;
  options.capacity = 8;
  options.max_series = 64;
  options.max_events = 8;
  return options;
}

TEST(FlightRecorderTest, CounterDeltaAndRateMath) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder recorder(SmallOptions(), &registry, [&now] { return now; });

  Counter& counter = registry.GetCounter("test.counter");
  counter.Add(5);
  now = 1 * kSecond;
  recorder.SampleNow();
  counter.Add(5);
  now = 3 * kSecond;  // 2s gap: rate must use actual inter-sample time
  recorder.SampleNow();

  const FlightRecorder::Series series = recorder.Query("test.counter", 0);
  ASSERT_TRUE(series.known);
  EXPECT_TRUE(series.is_counter);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[0].t_ns, 1 * kSecond);
  EXPECT_EQ(series.points[0].value, 5.0);
  EXPECT_EQ(series.points[0].delta, 0.0);  // window's first point
  EXPECT_EQ(series.points[1].t_ns, 3 * kSecond);
  EXPECT_EQ(series.points[1].value, 10.0);
  EXPECT_EQ(series.points[1].delta, 5.0);
  EXPECT_DOUBLE_EQ(series.points[1].rate, 2.5);
  EXPECT_EQ(recorder.samples_taken(), 2u);
}

TEST(FlightRecorderTest, CounterResetReportsNewValueAsDelta) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder recorder(SmallOptions(), &registry, [&now] { return now; });

  Counter& counter = registry.GetCounter("test.counter");
  counter.Add(10);
  now = 1 * kSecond;
  recorder.SampleNow();
  registry.Reset();  // reload epoch: every counter back to zero
  counter.Add(3);
  now = 2 * kSecond;
  recorder.SampleNow();

  const FlightRecorder::Series series = recorder.Query("test.counter", 0);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[1].value, 3.0);
  // Prometheus-style: a counter that went backwards contributes its new
  // value as the delta, never a negative rate.
  EXPECT_EQ(series.points[1].delta, 3.0);
  EXPECT_DOUBLE_EQ(series.points[1].rate, 3.0);
}

TEST(FlightRecorderTest, GaugeSeriesKeepsSignedDeltas) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder recorder(SmallOptions(), &registry, [&now] { return now; });

  Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(5);
  now = 1 * kSecond;
  recorder.SampleNow();
  gauge.Set(2);
  now = 2 * kSecond;
  recorder.SampleNow();

  const FlightRecorder::Series series = recorder.Query("test.gauge", 0);
  ASSERT_TRUE(series.known);
  EXPECT_FALSE(series.is_counter);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[1].value, 2.0);
  EXPECT_EQ(series.points[1].delta, -3.0);  // gauges may go down
}

TEST(FlightRecorderTest, RingWrapKeepsNewestSamples) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder::Options options = SmallOptions();
  options.capacity = 4;
  FlightRecorder recorder(options, &registry, [&now] { return now; });

  Counter& counter = registry.GetCounter("test.counter");
  for (int i = 1; i <= 6; ++i) {
    counter.Add(1);
    now = static_cast<std::uint64_t>(i) * kSecond;
    recorder.SampleNow();
  }

  const FlightRecorder::Series series = recorder.Query("test.counter", 0);
  ASSERT_EQ(series.points.size(), 4u);  // oldest two fell off the ring
  EXPECT_EQ(series.points.front().t_ns, 3 * kSecond);
  EXPECT_EQ(series.points.back().t_ns, 6 * kSecond);
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_LT(series.points[i - 1].t_ns, series.points[i].t_ns);
    EXPECT_EQ(series.points[i].delta, 1.0);
  }
  EXPECT_EQ(recorder.samples_taken(), 6u);
}

TEST(FlightRecorderTest, SeriesTableOverflowTicksDroppedCounter) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder::Options options = SmallOptions();
  // The constructor registers the three history.* self-metrics; they fill
  // the whole table, so this later counter cannot be tracked.
  options.max_series = 3;
  FlightRecorder recorder(options, &registry, [&now] { return now; });
  registry.GetCounter("zz.extra").Add(1);

  now = 1 * kSecond;
  recorder.SampleNow();
  EXPECT_GT(recorder.series_dropped(), 0u);
  EXPECT_FALSE(recorder.Query("zz.extra", 0).known);

  // The overflow is visible in the sampled data itself: the self-metric
  // ticked after the first sample, so the second sample records it.
  now = 2 * kSecond;
  recorder.SampleNow();
  const FlightRecorder::Series dropped =
      recorder.Query("history.series.dropped", 0);
  ASSERT_TRUE(dropped.known);
  EXPECT_GT(dropped.points.back().value, 0.0);
}

TEST(FlightRecorderTest, SelfSampleCounterIsMonotone) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder recorder(SmallOptions(), &registry, [&now] { return now; });
  for (int i = 1; i <= 3; ++i) {
    now = static_cast<std::uint64_t>(i) * kSecond;
    recorder.SampleNow();
  }
  // Each sample reads the registry before ticking itself, so sample i
  // records i-1 prior samples: 0, 1, 2 — strictly consistent deltas.
  const FlightRecorder::Series series =
      recorder.Query("history.samples.taken", 0);
  ASSERT_EQ(series.points.size(), 3u);
  for (std::size_t i = 0; i < series.points.size(); ++i) {
    EXPECT_EQ(series.points[i].value, static_cast<double>(i));
    if (i > 0) EXPECT_EQ(series.points[i].delta, 1.0);
  }
}

TEST(FlightRecorderTest, EventMarksAreWindowedAndBounded) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder::Options options = SmallOptions();
  options.max_events = 2;
  FlightRecorder recorder(options, &registry, [&now] { return now; });

  now = 1 * kSecond;
  recorder.MarkEvent("trace-a");
  now = 2 * kSecond;
  recorder.MarkEvent("trace-b");
  now = 10 * kSecond;
  recorder.MarkEvent("trace-c");  // ring holds 2: trace-a evicted

  const std::vector<FlightRecorder::EventMark> all = recorder.Events(0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].label, "trace-b");
  EXPECT_EQ(all[1].label, "trace-c");

  const std::vector<FlightRecorder::EventMark> recent =
      recorder.Events(2 * kSecond);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].label, "trace-c");
  EXPECT_EQ(registry.GetCounter("history.events.marked").Value(), 3u);
}

TEST(FlightRecorderTest, QueryWindowKeepsDeltaContinuity) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder recorder(SmallOptions(), &registry, [&now] { return now; });

  Counter& counter = registry.GetCounter("test.counter");
  for (int i = 1; i <= 4; ++i) {
    counter.Add(static_cast<std::uint64_t>(i));
    now = static_cast<std::uint64_t>(i) * kSecond;
    recorder.SampleNow();
  }
  // Trailing 1.5s of a 4s history: only the samples at t=3s and t=4s, but
  // the t=3s delta is still computed against the out-of-window t=2s value.
  const FlightRecorder::Series series =
      recorder.Query("test.counter", kSecond + kSecond / 2);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[0].t_ns, 3 * kSecond);
  EXPECT_EQ(series.points[0].value, 6.0);
  EXPECT_EQ(series.points[0].delta, 3.0);
  EXPECT_EQ(series.points[1].delta, 4.0);
}

TEST(FlightRecorderTest, RenderJsonShapes) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  FlightRecorder recorder(SmallOptions(), &registry, [&now] { return now; });
  registry.GetCounter("test.counter").Add(7);
  now = 1 * kSecond;
  recorder.SampleNow();
  recorder.MarkEvent("trace-x");

  const std::string known = recorder.RenderJson("test.counter", 0);
  EXPECT_NE(known.find("\"metric\":\"test.counter\""), std::string::npos);
  EXPECT_NE(known.find("\"known\":true"), std::string::npos);
  EXPECT_NE(known.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(known.find("\"interval_ms\":1000"), std::string::npos);
  EXPECT_NE(known.find("\"value\":7"), std::string::npos);
  EXPECT_NE(known.find("\"label\":\"trace-x\""), std::string::npos);
  EXPECT_NE(known.find("\"samples_taken\":1"), std::string::npos);
  EXPECT_EQ(known.find("\"series\":["), std::string::npos);

  // Unknown metric: known:false plus the series directory for discovery.
  const std::string unknown = recorder.RenderJson("nope", 0);
  EXPECT_NE(unknown.find("\"known\":false"), std::string::npos);
  EXPECT_NE(unknown.find("\"series\":["), std::string::npos);
  EXPECT_NE(unknown.find("\"test.counter\""), std::string::npos);
  EXPECT_NE(unknown.find("\"history.samples.taken\""), std::string::npos);
  EXPECT_EQ(unknown.find("\"type\":"), std::string::npos);
}

TEST(FlightRecorderTest, BackgroundSamplerStartStopIdempotent) {
  MetricsRegistry registry;
  FlightRecorder recorder(SmallOptions(), &registry);  // real clock
  recorder.Start();
  recorder.Start();  // no second thread
  recorder.Stop();
  recorder.Stop();
  // The loop samples once immediately on start, before its first wait.
  EXPECT_GE(recorder.samples_taken(), 1u);
  recorder.Start();  // restartable after stop
  recorder.Stop();
  EXPECT_GE(recorder.samples_taken(), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
