#include "qdcbir/obs/slo.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {
namespace {

constexpr std::uint64_t kSecond = 1000ull * 1000 * 1000;

SloDefinition LatencySlo() {
  SloDefinition def;
  def.name = "latency";
  def.kind = SloKind::kLatencyQuantile;
  def.metric = "test.latency";
  def.threshold = 1e6;  // 1 ms
  def.objective = 0.95;
  return def;
}

TEST(SloEngine, StartsOkWithRegisteredGauges) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  SloEngine engine({LatencySlo()}, &registry, [&] { return now; });
  ASSERT_EQ(engine.definition_count(), 1u);
  EXPECT_EQ(engine.WorstState(), SloState::kOk);
  // Gauge families exist (at 0) before any evaluation, so the first
  // /metrics scrape already exposes qdcbir_slo_*.
  EXPECT_EQ(registry.GetGauge("slo.latency.state").Value(), 0);
  EXPECT_EQ(registry.GetGauge("slo.latency.fast_burn_permille").Value(), 0);
}

TEST(SloEngine, BreachesUnderInjectedLatencyAndRecovers) {
  MetricsRegistry registry;
  Histogram& latency = registry.GetHistogram("test.latency");
  std::uint64_t now = 0;
  SloEngine engine({LatencySlo()}, &registry, [&] { return now; });

  engine.Evaluate();  // baseline sample at t=0, nothing recorded
  EXPECT_EQ(engine.WorstState(), SloState::kOk);

  // Ten sessions at 100 ms against a 1 ms target: the whole window is bad,
  // so burn = 1.0 / (1 - 0.95) = 20 in both windows -> breach.
  for (int i = 0; i < 10; ++i) latency.Record(100 * 1000 * 1000);
  now = 10 * kSecond;
  engine.Evaluate();
  EXPECT_EQ(engine.WorstState(), SloState::kBreach);
  EXPECT_EQ(registry.GetGauge("slo.latency.state").Value(), 2);
  EXPECT_GT(registry.GetGauge("slo.latency.fast_burn_permille").Value(),
            14400 - 1);

  // No new traffic; once the bad burst ages out of the fast window only the
  // slow window still burns -> warn.
  now = 400 * kSecond;
  engine.Evaluate();
  EXPECT_EQ(engine.WorstState(), SloState::kWarn);

  // A flood of fast sessions dilutes the slow window too -> ok.
  for (int i = 0; i < 1000; ++i) latency.Record(1000);
  now = 500 * kSecond;
  engine.Evaluate();
  EXPECT_EQ(engine.WorstState(), SloState::kOk);
  EXPECT_EQ(registry.GetGauge("slo.latency.state").Value(), 0);

  const std::vector<SloStatus> statuses = engine.Snapshot();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 1010u);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
}

TEST(SloEngine, AvailabilityCountsBadRequests) {
  MetricsRegistry registry;
  Counter& requests = registry.GetCounter("test.requests");
  Counter& bad = registry.GetCounter("test.bad");
  SloDefinition def;
  def.name = "availability";
  def.kind = SloKind::kAvailability;
  def.metric = "test.requests";
  def.bad_metric = "test.bad";
  def.objective = 0.95;
  std::uint64_t now = 0;
  SloEngine engine({def}, &registry, [&] { return now; });
  engine.Evaluate();

  for (int i = 0; i < 50; ++i) {
    requests.Add();
    bad.Add();
  }
  now = 10 * kSecond;
  engine.Evaluate();
  EXPECT_EQ(engine.WorstState(), SloState::kBreach);
}

TEST(SloEngine, ZeroFloorHistogramSloNeverBurns) {
  MetricsRegistry registry;
  Histogram& jaccard = registry.GetHistogram("test.jaccard");
  SloDefinition def;
  def.name = "stability";
  def.kind = SloKind::kHistogramFloor;
  def.metric = "test.jaccard";
  def.threshold = 0.0;  // opt-out floor: exported but always ok
  def.objective = 0.5;
  std::uint64_t now = 0;
  SloEngine engine({def}, &registry, [&] { return now; });
  engine.Evaluate();
  for (int i = 0; i < 20; ++i) jaccard.Record(0);  // worst possible overlap
  now = 10 * kSecond;
  engine.Evaluate();
  EXPECT_EQ(engine.WorstState(), SloState::kOk);
}

TEST(SloEngine, SurvivesRegistryReset) {
  MetricsRegistry registry;
  Histogram& latency = registry.GetHistogram("test.latency");
  std::uint64_t now = 0;
  SloEngine engine({LatencySlo()}, &registry, [&] { return now; });
  engine.Evaluate();
  for (int i = 0; i < 10; ++i) latency.Record(100 * 1000 * 1000);
  now = 10 * kSecond;
  engine.Evaluate();
  EXPECT_EQ(engine.WorstState(), SloState::kBreach);

  // Totals regress after a reset; the monotonic guard restarts the window
  // ring instead of computing negative deltas.
  registry.Reset();
  now = 20 * kSecond;
  engine.Evaluate();
  now = 30 * kSecond;
  engine.Evaluate();
  EXPECT_EQ(engine.WorstState(), SloState::kOk);
}

TEST(SloEngine, RenderJsonListsEverySloWithState) {
  MetricsRegistry registry;
  std::uint64_t now = 0;
  SloDefinition floor;
  floor.name = "stability";
  floor.kind = SloKind::kHistogramFloor;
  floor.metric = "test.jaccard";
  SloEngine engine({LatencySlo(), floor}, &registry, [&] { return now; });
  engine.Evaluate();
  const std::string json = engine.RenderJson();
  EXPECT_NE(json.find("\"slos\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stability\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"latency_quantile\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram_floor\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"objective\":0.95"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
