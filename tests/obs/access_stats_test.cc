// Per-leaf access accounting: TLS-batched taps, scoped sink install with
// thread-pool propagation, the process-wide sharded table, the bounded
// co-access tracker, and the labeled Prometheus rendering.

#include "qdcbir/obs/access_stats.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "qdcbir/core/thread_pool.h"

namespace qdcbir {
namespace obs {
namespace {

LeafAccessCounts TotalOf(const std::vector<LeafAccess>& rows) {
  LeafAccessCounts totals;
  for (const LeafAccess& row : rows) totals.Add(row.counts);
  return totals;
}

TEST(AccessTapsTest, NoOpWithoutInstalledSink) {
  ASSERT_EQ(CurrentAccessAccumulator(), nullptr);
  // Taps with no sink must be pure no-ops: nothing to merge anywhere, and
  // installing a sink afterwards must not surface earlier increments.
  CountLeafScan(7, 100, 800);
  CountLeafCacheHit(7);
  CountLeafCacheMiss(7);
  AccessAccumulator sink;
  {
    const ScopedAccessAccounting scope(&sink);
  }
  EXPECT_TRUE(sink.empty());
}

TEST(AccessTapsTest, ScopedInstallMergesOnExitSorted) {
  AccessAccumulator sink;
  {
    const ScopedAccessAccounting scope(&sink);
    ASSERT_EQ(CurrentAccessAccumulator(), &sink);
    CountLeafScan(9, 10, 80);
    CountLeafScan(3, 5, 40);
    CountLeafScan(9, 1, 8);
    CountLeafCacheHit(3);
    CountLeafCacheMiss(9);
    // Nothing visible until the scope flushes.
    EXPECT_TRUE(sink.empty());
  }
  const std::vector<LeafAccess> rows = sink.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].leaf, 3u);  // sorted by leaf id
  EXPECT_EQ(rows[1].leaf, 9u);
  EXPECT_EQ(rows[0].counts.scans, 1u);
  EXPECT_EQ(rows[0].counts.distance_evals, 5u);
  EXPECT_EQ(rows[0].counts.feature_bytes, 40u);
  EXPECT_EQ(rows[0].counts.cache_hits, 1u);
  EXPECT_EQ(rows[0].counts.cache_misses, 0u);
  EXPECT_EQ(rows[1].counts.scans, 2u);
  EXPECT_EQ(rows[1].counts.distance_evals, 11u);
  EXPECT_EQ(rows[1].counts.feature_bytes, 88u);
  EXPECT_EQ(rows[1].counts.cache_misses, 1u);
}

TEST(AccessTapsTest, SlotOverflowFlushesInsteadOfDropping) {
  // More distinct leaves than the TLS slot table holds: the overflow path
  // flushes to the sink and keeps counting — nothing is lost.
  AccessAccumulator sink;
  const std::size_t distinct = internal::kAccessTlsSlots * 3 + 1;
  {
    const ScopedAccessAccounting scope(&sink);
    for (std::size_t leaf = 0; leaf < distinct; ++leaf) {
      CountLeafScan(static_cast<AccessLeafId>(leaf), leaf + 1, 8 * (leaf + 1));
    }
  }
  const std::vector<LeafAccess> rows = sink.Snapshot();
  ASSERT_EQ(rows.size(), distinct);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].leaf, i);
    EXPECT_EQ(rows[i].counts.scans, 1u);
    EXPECT_EQ(rows[i].counts.distance_evals, i + 1);
  }
}

TEST(AccessTapsTest, MidScopeFlushMakesPendingDeltasVisible) {
  AccessAccumulator sink;
  const ScopedAccessAccounting scope(&sink);
  CountLeafScan(5, 2, 16);
  EXPECT_TRUE(sink.empty());
  FlushAccessAccounting();
  const std::vector<LeafAccess> rows = sink.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].leaf, 5u);
  EXPECT_EQ(rows[0].counts.scans, 1u);
}

TEST(AccessTapsTest, NestedNullScopeDisablesAccounting) {
  AccessAccumulator sink;
  {
    const ScopedAccessAccounting outer(&sink);
    CountLeafScan(1, 1, 8);
    {
      const ScopedAccessAccounting inner(nullptr);
      ASSERT_EQ(CurrentAccessAccumulator(), nullptr);
      CountLeafScan(2, 100, 800);  // dropped: accounting off in this scope
    }
    CountLeafScan(1, 1, 8);
  }
  const std::vector<LeafAccess> rows = sink.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].leaf, 1u);
  EXPECT_EQ(rows[0].counts.scans, 2u);
}

TEST(AccessTapsTest, ThreadPoolPropagatesSinkToWorkers) {
  // Taps inside pool tasks must land in the enqueuer's accumulator, the
  // same propagation contract as resource accounting and trace context.
  AccessAccumulator sink;
  ThreadPool pool(4);
  {
    const ScopedAccessAccounting scope(&sink);
    std::vector<std::function<void()>> tasks;
    for (std::size_t leaf = 0; leaf < 32; ++leaf) {
      tasks.push_back([leaf] {
        CountLeafScan(static_cast<AccessLeafId>(leaf), 3, 24);
        CountLeafCacheMiss(static_cast<AccessLeafId>(leaf));
      });
    }
    pool.Run(std::move(tasks));
    FlushAccessAccounting();
  }
  const std::vector<LeafAccess> rows = sink.Snapshot();
  ASSERT_EQ(rows.size(), 32u);
  const LeafAccessCounts totals = TotalOf(rows);
  EXPECT_EQ(totals.scans, 32u);
  EXPECT_EQ(totals.distance_evals, 96u);
  EXPECT_EQ(totals.cache_misses, 32u);
}

TEST(AccessStatsTableTest, MergeSessionAggregatesAndCountsSessions) {
  AccessStatsTable table;
  EXPECT_EQ(table.sessions_merged(), 0u);
  table.MergeSession({});  // empty session: no merge, no count
  EXPECT_EQ(table.sessions_merged(), 0u);

  std::vector<LeafAccess> session;
  session.push_back({4, {2, 20, 160, 1, 1}});
  session.push_back({kTableScanLeaf, {1, 500, 4000, 0, 1}});
  table.MergeSession(session);
  table.MergeSession(session);
  EXPECT_EQ(table.sessions_merged(), 2u);

  const std::vector<LeafAccess> rows = table.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].leaf, 4u);
  EXPECT_EQ(rows[0].counts.scans, 4u);
  EXPECT_EQ(rows[1].leaf, kTableScanLeaf);
  EXPECT_EQ(rows[1].counts.distance_evals, 1000u);

  const LeafAccessCounts totals = table.Totals();
  EXPECT_EQ(totals.scans, 6u);
  EXPECT_EQ(totals.feature_bytes, 8320u);

  table.Reset();
  EXPECT_TRUE(table.Snapshot().empty());
  EXPECT_EQ(table.sessions_merged(), 0u);
}

TEST(CoAccessTrackerTest, CountsUnorderedPairsAcrossSessions) {
  CoAccessTracker tracker(/*max_pairs=*/64, /*max_set_leaves=*/8);
  tracker.RecordTouchedSet({1, 2, 3});
  tracker.RecordTouchedSet({2, 1});       // same pair regardless of order
  tracker.RecordTouchedSet({2, 2, 1});    // duplicates deduped
  tracker.RecordTouchedSet({7});          // singleton: no pair
  EXPECT_EQ(tracker.sets_recorded(), 4u);
  EXPECT_EQ(tracker.evictions(), 0u);

  const std::vector<CoAccessTracker::PairCount> top = tracker.TopPairs(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].a, 1u);
  EXPECT_EQ(top[0].b, 2u);
  EXPECT_EQ(top[0].count, 3u);
  // Ties broken by (a, b) ascending.
  EXPECT_EQ(top[1].a, 1u);
  EXPECT_EQ(top[1].b, 3u);
  EXPECT_EQ(top[1].count, 1u);
  EXPECT_EQ(top[2].a, 2u);
  EXPECT_EQ(top[2].b, 3u);
}

TEST(CoAccessTrackerTest, EvictsMinimumPairAtCapacityHeavySurvives) {
  CoAccessTracker tracker(/*max_pairs=*/2, /*max_set_leaves=*/8);
  for (int i = 0; i < 10; ++i) tracker.RecordTouchedSet({1, 2});  // heavy
  tracker.RecordTouchedSet({3, 4});
  EXPECT_EQ(tracker.evictions(), 0u);
  tracker.RecordTouchedSet({5, 6});  // capacity hit: evicts the min pair
  EXPECT_EQ(tracker.evictions(), 1u);

  const std::vector<CoAccessTracker::PairCount> top = tracker.TopPairs(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].a, 1u);
  EXPECT_EQ(top[0].b, 2u);
  EXPECT_EQ(top[0].count, 10u);
  // The newcomer inherited the evicted minimum's count + 1 (Space-Saving).
  EXPECT_EQ(top[1].a, 5u);
  EXPECT_EQ(top[1].b, 6u);
  EXPECT_EQ(top[1].count, 2u);
}

TEST(CoAccessTrackerTest, TruncatesOversizedSetsVisibly) {
  CoAccessTracker tracker(/*max_pairs=*/64, /*max_set_leaves=*/4);
  tracker.RecordTouchedSet({6, 5, 4, 3, 2, 1});  // 2 over the cap
  EXPECT_EQ(tracker.leaves_truncated(), 2u);
  // Lowest ids are kept: pairs only among {1,2,3,4} = C(4,2) = 6.
  const std::vector<CoAccessTracker::PairCount> top = tracker.TopPairs(100);
  EXPECT_EQ(top.size(), 6u);
  for (const CoAccessTracker::PairCount& pair : top) {
    EXPECT_LE(pair.b, 4u);
  }

  tracker.Reset();
  EXPECT_TRUE(tracker.TopPairs(10).empty());
  EXPECT_EQ(tracker.sets_recorded(), 0u);
  EXPECT_EQ(tracker.leaves_truncated(), 0u);
}

TEST(RenderIndexLeafTest, EmitsLabeledFamiliesWithTableBucket) {
  std::vector<LeafAccess> rows;
  rows.push_back({17, {5, 50, 400, 2, 3}});
  rows.push_back({kTableScanLeaf, {1, 500, 4000, 0, 1}});
  const std::string text = RenderIndexLeafPrometheusText(rows, 16);
  EXPECT_NE(text.find("# TYPE qdcbir_index_leaf_scans counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP qdcbir_index_leaf_scans"), std::string::npos);
  EXPECT_NE(text.find("qdcbir_index_leaf_scans{leaf=\"17\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_index_leaf_scans{leaf=\"table\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_index_leaf_distance_evals{leaf=\"17\"} 50"),
            std::string::npos);
  EXPECT_NE(text.find("qdcbir_index_leaf_feature_bytes{leaf=\"table\"} 4000"),
            std::string::npos);
}

TEST(RenderIndexLeafTest, TopNKeepsHottestLeavesOnly) {
  std::vector<LeafAccess> rows;
  for (AccessLeafId leaf = 0; leaf < 10; ++leaf) {
    rows.push_back({leaf, {leaf + 1, 0, 0, 0, 0}});  // leaf 9 is hottest
  }
  const std::string text = RenderIndexLeafPrometheusText(rows, 2);
  EXPECT_NE(text.find("{leaf=\"9\"}"), std::string::npos);
  EXPECT_NE(text.find("{leaf=\"8\"}"), std::string::npos);
  EXPECT_EQ(text.find("{leaf=\"7\"}"), std::string::npos);
  EXPECT_EQ(text.find("{leaf=\"0\"}"), std::string::npos);
}

TEST(RenderIndexLeafTest, EmptySnapshotRendersNothing) {
  // Declared-but-sampleless families fail exposition validation, so a cold
  // table (no sessions yet) must contribute nothing to /metrics.
  EXPECT_EQ(RenderIndexLeafPrometheusText({}, 16), "");
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
