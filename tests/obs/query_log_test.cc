// QueryLog tests: basic recording, ring wrap-around determinism (the
// newest kCapacity records survive, in ascending sequence order), JSON
// rendering, and concurrent writers + readers staying torn-free (the
// seqlock must never expose a half-written record; run under TSan in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/query_log.h"

namespace qdcbir {
namespace obs {

/// Befriended by QueryLog: pins a slot into the "write in progress" seqlock
/// state so the collision drop path can be forced deterministically.
class QueryLogTestPeer {
 public:
  static void MarkSlotInFlight(QueryLog& log, std::size_t slot) {
    log.slots_[slot].version.store(1, std::memory_order_relaxed);
  }
};

namespace {

QueryAuditRecord MakeRecord(std::uint64_t tag) {
  QueryAuditRecord record;
  record.set_engine("qd");
  record.set_label("query-" + std::to_string(tag));
  record.seed = tag;
  record.rounds = tag;
  record.picks = tag;
  record.results = tag;
  record.subqueries = tag;
  record.boundary_expansions = tag;
  record.expanded_subqueries = tag;
  record.nodes_visited = tag;
  record.candidates_scored = tag;
  record.nodes_touched = tag;
  record.distinct_nodes_sampled = tag;
  record.rounds_ns = tag;
  record.finalize_ns = tag;
  record.total_ns = tag;
  return record;
}

/// Every numeric field of a record carries the same tag, so a torn read
/// (fields from two different writes) is detectable.
bool IsConsistent(const QueryAuditRecord& record) {
  const std::uint64_t tag = record.seed;
  return record.rounds == tag && record.picks == tag &&
         record.results == tag && record.subqueries == tag &&
         record.boundary_expansions == tag &&
         record.expanded_subqueries == tag && record.nodes_visited == tag &&
         record.candidates_scored == tag && record.nodes_touched == tag &&
         record.distinct_nodes_sampled == tag && record.rounds_ns == tag &&
         record.finalize_ns == tag && record.total_ns == tag &&
         record.label_view() == "query-" + std::to_string(tag);
}

TEST(QueryLogTest, RecordsAndSnapshots) {
  QueryLog log;
  EXPECT_TRUE(log.Snapshot().empty());
  log.Record(MakeRecord(7));
  log.Record(MakeRecord(8));
  const std::vector<QueryAuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 0u);
  EXPECT_EQ(records[1].sequence, 1u);
  EXPECT_EQ(records[0].seed, 7u);
  EXPECT_EQ(records[0].engine_view(), "qd");
  EXPECT_EQ(records[0].label_view(), "query-7");
  EXPECT_EQ(log.total_recorded(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(QueryLogTest, LabelsTruncateSafely) {
  QueryLog log;
  QueryAuditRecord record = MakeRecord(1);
  record.set_label(std::string(100, 'x'));
  record.set_engine("very-long-engine-name");
  log.Record(record);
  const std::vector<QueryAuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label_view(), std::string(sizeof(record.label), 'x'));
  EXPECT_EQ(records[0].engine_view(), "very-long-en");  // 12-byte capacity
}

TEST(QueryLogTest, WrapAroundKeepsNewestInOrder) {
  QueryLog log;
  const std::uint64_t total = QueryLog::kCapacity * 2 + 44;
  for (std::uint64_t i = 0; i < total; ++i) log.Record(MakeRecord(i));
  const std::vector<QueryAuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), QueryLog::kCapacity);
  // Exactly the newest kCapacity sequences, ascending, with matching
  // payloads — wrap-around is deterministic.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::uint64_t expected = total - QueryLog::kCapacity + i;
    EXPECT_EQ(records[i].sequence, expected);
    EXPECT_EQ(records[i].seed, expected);
    EXPECT_TRUE(IsConsistent(records[i]));
  }
  EXPECT_EQ(log.total_recorded(), total);
}

TEST(QueryLogTest, RenderJsonContainsRecordsAndCounts) {
  QueryLog log;
  log.Record(MakeRecord(3));
  const std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"capacity\":128"), std::string::npos);
  EXPECT_NE(json.find("\"total_recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"query-3\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rounds_ns\":3"), std::string::npos);
}

TEST(QueryLogTest, TraceIdRoundTripsThroughRecordAndJson) {
  QueryLog log;
  QueryAuditRecord record = MakeRecord(5);
  record.trace_hi = 0x0af7651916cd43ddull;
  record.trace_lo = 0x8448eb211c80319cull;
  record.expanded_subqueries = 2;
  log.Record(record);
  const std::vector<QueryAuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_hex(), "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(records[0].expanded_subqueries, 2u);
  const std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"trace\":\"0af7651916cd43dd8448eb211c80319c\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"expanded_subqueries\":2"), std::string::npos);
}

TEST(QueryLogTest, ZeroTraceRendersAsEmptyString) {
  QueryAuditRecord record;
  EXPECT_EQ(record.trace_hex(), "");
  QueryLog log;
  log.Record(record);
  EXPECT_NE(log.RenderJson().find("\"trace\":\"\""), std::string::npos);
}

TEST(QueryLogTest, JsonEscapesControlCharactersInLabels) {
  QueryLog log;
  QueryAuditRecord record = MakeRecord(1);
  record.set_label("a\"b\\c\td");
  log.Record(record);
  const std::string json = log.RenderJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\td"), std::string::npos) << json;
}

TEST(QueryLogTest, ConcurrentWritersAndReadersStayTornFree) {
  QueryLog log;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;
  ThreadPool pool(kWriters + 2);
  std::atomic<bool> writers_done{false};
  std::atomic<std::uint64_t> torn{0};

  std::atomic<int> writers_left{kWriters};
  std::vector<std::function<void()>> tasks;
  for (int w = 0; w < kWriters; ++w) {
    tasks.push_back([&log, &writers_done, &writers_left, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        log.Record(MakeRecord(static_cast<std::uint64_t>(w) * kPerWriter + i));
      }
      if (writers_left.fetch_sub(1) == 1) {
        writers_done.store(true, std::memory_order_release);
      }
    });
  }
  // Two readers snapshot continuously while writers hammer the ring; the
  // last writer to finish releases them.
  for (int r = 0; r < 2; ++r) {
    tasks.push_back([&log, &writers_done, &torn] {
      while (!writers_done.load(std::memory_order_acquire)) {
        for (const QueryAuditRecord& record : log.Snapshot()) {
          if (!IsConsistent(record)) torn.fetch_add(1);
        }
      }
    });
  }
  pool.Run(std::move(tasks));

  EXPECT_EQ(torn.load(), 0u);
  // Under contention same-slot collisions may drop records, but the
  // accounting must balance: recorded = attempts, snapshot ≤ capacity.
  EXPECT_EQ(log.total_recorded(), kWriters * kPerWriter);
  const std::vector<QueryAuditRecord> records = log.Snapshot();
  EXPECT_LE(records.size(), QueryLog::kCapacity);
  std::set<std::uint64_t> sequences;
  for (const QueryAuditRecord& record : records) {
    EXPECT_TRUE(IsConsistent(record));
    sequences.insert(record.sequence);
  }
  EXPECT_EQ(sequences.size(), records.size());  // no duplicate sequences
}

TEST(QueryLogTest, SlotCollisionDropsVisiblyAndTicksCounter) {
  QueryLog log;
  Counter& dropped_counter =
      MetricsRegistry::Global().GetCounter("querylog.dropped");
  const std::uint64_t counter_before = dropped_counter.Value();

  // Sequence 0 targets slot 0; with the slot pinned "in flight" the writer
  // must drop the record, tick both the ring's own drop count and the
  // registry counter, and never tear the slot.
  QueryLogTestPeer::MarkSlotInFlight(log, 0);
  log.Record(MakeRecord(42));
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.total_recorded(), 1u);  // the sequence was still consumed
  EXPECT_TRUE(log.Snapshot().empty());  // nothing stable was published
  EXPECT_EQ(dropped_counter.Value(), counter_before + 1);
  EXPECT_NE(log.RenderJson().find("\"dropped\":1"), std::string::npos);

  // Sequence 1 targets slot 1, which is healthy: recording proceeds.
  log.Record(MakeRecord(43));
  EXPECT_EQ(log.dropped(), 1u);
  const std::vector<QueryAuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seed, 43u);
}

TEST(QueryLogTest, GlobalIsASingleton) {
  EXPECT_EQ(&QueryLog::Global(), &QueryLog::Global());
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
