#include "qdcbir/obs/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/trace_context.h"
#include "qdcbir/serve/json_mini.h"

namespace qdcbir {
namespace obs {
namespace {

TEST(LogTest, LevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
}

TEST(LogTest, WriteStampsSiteSequenceAndClocks) {
  LogRing& ring = LogRing::Global();
  ring.Clear();
  QDCBIR_LOG(LogLevel::kInfo, "hello from the test");
  const std::vector<LogEntry> entries = ring.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const LogEntry& entry = entries[0];
  EXPECT_EQ(entry.level, LogLevel::kInfo);
  EXPECT_EQ(entry.message, "hello from the test");
  // Site is basename:line of this file.
  EXPECT_EQ(entry.site.rfind("log_test.cc:", 0), 0u) << entry.site;
  EXPECT_GT(entry.unix_ms, 0u);
  EXPECT_GT(entry.mono_ns, 0u);
  EXPECT_EQ(entry.suppressed, 0u);
  EXPECT_EQ(entry.trace_id, "");  // no trace context installed
}

TEST(LogTest, EntriesCarryCurrentTraceId) {
  LogRing& ring = LogRing::Global();
  ring.Clear();
  const TraceContext context = NewTraceContext();
  {
    const ScopedTraceContext scoped(context);
    QDCBIR_LOG(LogLevel::kInfo, "inside a trace");
  }
  QDCBIR_LOG(LogLevel::kInfo, "outside again");
  const std::vector<LogEntry> entries = ring.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].trace_id, TraceIdHex(context));
  EXPECT_EQ(entries[1].trace_id, "");
}

TEST(LogTest, RingIsBoundedAndKeepsNewest) {
  LogRing& ring = LogRing::Global();
  ring.Clear();
  for (std::size_t i = 0; i < LogRing::kCapacity + 20; ++i) {
    // Direct writes bypass the per-site limiter, which is tested below.
    ring.Write(LogLevel::kDebug, "flood.cc", static_cast<int>(i),
               "entry " + std::to_string(i));
  }
  const std::vector<LogEntry> entries = ring.Snapshot();
  ASSERT_EQ(entries.size(), LogRing::kCapacity);
  EXPECT_EQ(entries.back().message,
            "entry " + std::to_string(LogRing::kCapacity + 19));
  // Oldest retained entry is capacity entries back from the newest.
  EXPECT_EQ(entries.front().message, "entry 20");
}

TEST(LogTest, CallSiteRateLimitsAndReportsSuppression) {
  LogRing& ring = LogRing::Global();
  ring.Clear();
  // One loop = one call site. The burst admits the first kBurst entries;
  // the rest are suppressed (the refill rate is far too slow to matter
  // within this loop).
  for (int i = 0; i < 100; ++i) {
    QDCBIR_LOG(LogLevel::kDebug, "spam " + std::to_string(i));
  }
  const std::vector<LogEntry> entries = ring.Snapshot();
  ASSERT_GE(entries.size(), 1u);
  EXPECT_LT(entries.size(), 100u);
  EXPECT_LE(entries.size(),
            static_cast<std::size_t>(LogCallSite::kBurst) + 2);
}

TEST(LogTest, SuppressionIncrementsDroppedCounter) {
  LogRing& ring = LogRing::Global();
  ring.Clear();
  Counter& dropped = MetricsRegistry::Global().GetCounter("log.dropped");
  const std::uint64_t before = dropped.Value();
  for (int i = 0; i < 100; ++i) {
    QDCBIR_LOG(LogLevel::kDebug, "counter spam " + std::to_string(i));
  }
  // At most kBurst (plus refill slack) of the 100 writes were admitted;
  // every suppressed one must also land in the scrape-visible log.dropped
  // counter, not just the per-site tally /logz shows.
  const std::uint64_t suppressed = dropped.Value() - before;
  EXPECT_GE(suppressed,
            100u - static_cast<std::uint64_t>(LogCallSite::kBurst) - 2);
  EXPECT_LT(suppressed, 100u);
}

TEST(LogTest, RenderJsonParsesAndExposesEntries) {
  LogRing& ring = LogRing::Global();
  ring.Clear();
  const TraceContext context = NewTraceContext();
  {
    const ScopedTraceContext scoped(context);
    QDCBIR_LOG(LogLevel::kWarn, "quoted \"message\" with\nnewline");
  }
  const std::string json = ring.RenderJson();
  StatusOr<serve::JsonValue> parsed = serve::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed->U64Field("capacity", 0), LogRing::kCapacity);
  const serve::JsonValue* entries = parsed->Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  ASSERT_EQ(entries->items.size(), 1u);
  const serve::JsonValue& entry = entries->items[0];
  EXPECT_EQ(entry.Find("level")->string, "warn");
  EXPECT_EQ(entry.Find("trace")->string, TraceIdHex(context));
  EXPECT_EQ(entry.Find("message")->string, "quoted \"message\" with\nnewline");
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
