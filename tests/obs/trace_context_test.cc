#include "qdcbir/obs/trace_context.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/span.h"
#include "qdcbir/obs/trace_tree.h"
#include "qdcbir/serve/json_mini.h"

namespace qdcbir {
namespace obs {
namespace {

TEST(TraceContextTest, DefaultContextIsInert) {
  const TraceContext context;
  EXPECT_FALSE(context.has_trace_id());
  EXPECT_FALSE(context.recording());
  EXPECT_EQ(TraceIdHex(context), "");
}

TEST(TraceContextTest, NewTraceContextIsUniqueAndNonZero) {
  const TraceContext a = NewTraceContext();
  const TraceContext b = NewTraceContext();
  EXPECT_TRUE(a.has_trace_id());
  EXPECT_TRUE(b.has_trace_id());
  EXPECT_FALSE(a.trace_hi == b.trace_hi && a.trace_lo == b.trace_lo);
  EXPECT_EQ(a.span_id, 0u);
  EXPECT_EQ(TraceIdHex(a).size(), 32u);
}

TEST(TraceContextTest, ParseTraceparentRoundTripsThroughFormat) {
  TraceContext context;
  ASSERT_TRUE(ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &context));
  EXPECT_EQ(context.trace_hi, 0x0af7651916cd43ddull);
  EXPECT_EQ(context.trace_lo, 0x8448eb211c80319cull);
  EXPECT_EQ(context.span_id, 0xb7ad6b7169203331ull);
  EXPECT_EQ(TraceIdHex(context), "0af7651916cd43dd8448eb211c80319c");

  const std::string echoed = FormatTraceparent(context);
  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(echoed, &parsed));
  EXPECT_EQ(parsed.trace_hi, context.trace_hi);
  EXPECT_EQ(parsed.trace_lo, context.trace_lo);
  EXPECT_EQ(parsed.span_id, context.span_id);
}

TEST(TraceContextTest, FormatNeverEmitsAllZeroParent) {
  TraceContext context = NewTraceContext();
  context.span_id = 0;
  const std::string header = FormatTraceparent(context);
  TraceContext parsed;
  // A zero span id would render an all-zero parent field, which the spec
  // (and our own parser) rejects; Format substitutes a nonzero stand-in.
  EXPECT_TRUE(ParseTraceparent(header, &parsed));
}

TEST(TraceContextTest, ParseRejectsMalformedHeaders) {
  TraceContext context;
  const std::vector<std::string> bad = {
      "",
      "00",
      // wrong length
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",
      // unknown version
      "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      // uppercase hex (the spec requires lowercase)
      "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",
      // all-zero trace id
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      // all-zero parent id
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
      // wrong separators
      "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",
      // non-hex characters
      "00-0af7651916cd43dd8448eb211c8031gc-b7ad6b7169203331-01",
  };
  for (const std::string& header : bad) {
    EXPECT_FALSE(ParseTraceparent(header, &context)) << header;
  }
}

TEST(TraceContextTest, ScopedContextNestsAndRestores) {
  TraceContext outer = NewTraceContext();
  TraceContext inner = NewTraceContext();
  ASSERT_FALSE(CurrentTraceContext().has_trace_id());
  {
    const ScopedTraceContext outer_scope(outer);
    EXPECT_EQ(CurrentTraceContext().trace_lo, outer.trace_lo);
    {
      const ScopedTraceContext inner_scope(inner);
      EXPECT_EQ(CurrentTraceContext().trace_lo, inner.trace_lo);
    }
    EXPECT_EQ(CurrentTraceContext().trace_lo, outer.trace_lo);
  }
  EXPECT_FALSE(CurrentTraceContext().has_trace_id());
}

#ifndef QDCBIR_DISABLE_OBS

TEST(TraceTreeTest, SpansRecordIntoBufferWithParentLinks) {
  TraceContext context = NewTraceContext();
  context.buffer = std::make_shared<TraceBuffer>();
  const std::shared_ptr<TraceBuffer> buffer = context.buffer;
  {
    const ScopedTraceContext scoped(context);
    QDCBIR_SPAN("unit.parent");
    QDCBIR_SPAN_ANNOTATE("weight", 7);
    {
      QDCBIR_SPAN("unit.child");
      QDCBIR_SPAN_ANNOTATE("leaf", 42);
    }
  }
  const std::vector<SpanRecord> spans = buffer->spans();
  ASSERT_EQ(spans.size(), 2u);
  // Children close (and append) before parents.
  EXPECT_STREQ(spans[0].name, "unit.child");
  EXPECT_STREQ(spans[1].name, "unit.parent");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);

  const std::vector<SpanAnnotation> annotations = buffer->annotations();
  ASSERT_EQ(annotations.size(), 2u);
  EXPECT_EQ(annotations[0].span_id, spans[1].span_id);  // weight → parent
  EXPECT_EQ(annotations[0].value, 7);
  EXPECT_EQ(annotations[1].span_id, spans[0].span_id);  // leaf → child
  EXPECT_EQ(annotations[1].value, 42);
}

TEST(TraceTreeTest, BufferBoundsSpansAndCountsDrops) {
  Counter& dropped_counter =
      MetricsRegistry::Global().GetCounter("trace.spans.dropped");
  const std::uint64_t counter_before = dropped_counter.Value();
  TraceBuffer buffer;
  for (std::size_t i = 0; i < TraceBuffer::kMaxSpans + 10; ++i) {
    SpanRecord record;
    record.span_id = buffer.NewSpanId();
    record.name = "flood";
    buffer.Append(record);
  }
  EXPECT_EQ(buffer.spans().size(), TraceBuffer::kMaxSpans);
  EXPECT_EQ(buffer.dropped(), 10u);
  // The overflow is also process-visible: /metrics ticks per dropped span.
  EXPECT_EQ(dropped_counter.Value(), counter_before + 10);
}

TEST(TraceTreeTest, BufferBoundsAnnotationsAndCountsDrops) {
  Counter& dropped_counter =
      MetricsRegistry::Global().GetCounter("trace.annotations.dropped");
  const std::uint64_t counter_before = dropped_counter.Value();
  TraceBuffer buffer;
  const std::uint64_t span_id = buffer.NewSpanId();
  for (std::size_t i = 0; i < TraceBuffer::kMaxSpans + 7; ++i) {
    buffer.Annotate(span_id, "leaf", static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(buffer.annotations().size(), TraceBuffer::kMaxSpans);
  EXPECT_EQ(dropped_counter.Value(), counter_before + 7);
}

TEST(TraceTreeTest, StoreRendersTreeJsonWithSelfTimes) {
  TraceStore store;
  CompletedTrace trace;
  trace.trace_id = "0123456789abcdef0123456789abcdef";
  trace.label = "unit";
  trace.reason = "sampled";
  trace.total_ns = 1000;
  // root [0,1000) with children [100,400) and [500,600): self = 600.
  trace.spans.push_back(SpanRecord{1, 0, "root", 0, 1000, 1});
  trace.spans.push_back(SpanRecord{2, 1, "left", 100, 400, 1});
  trace.spans.push_back(SpanRecord{3, 1, "right", 500, 600, 2});
  trace.annotations.push_back(SpanAnnotation{3, "leaf", 9});
  store.Publish(std::move(trace));

  const std::string json = store.RenderJson();
  StatusOr<serve::JsonValue> parsed = serve::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed->U64Field("total_published", 0), 1u);
  const serve::JsonValue* traces = parsed->Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  ASSERT_EQ(traces->items.size(), 1u);
  const serve::JsonValue& entry = traces->items[0];
  EXPECT_EQ(entry.Find("trace_id")->string,
            "0123456789abcdef0123456789abcdef");
  EXPECT_EQ(entry.Find("reason")->string, "sampled");
  EXPECT_EQ(entry.U64Field("span_count", 0), 3u);

  const serve::JsonValue* roots = entry.Find("spans");
  ASSERT_NE(roots, nullptr);
  ASSERT_EQ(roots->items.size(), 1u);
  const serve::JsonValue& root = roots->items[0];
  EXPECT_EQ(root.Find("name")->string, "root");
  EXPECT_EQ(root.U64Field("duration_ns", 0), 1000u);
  EXPECT_EQ(root.U64Field("self_ns", 1), 600u);
  const serve::JsonValue* children = root.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->items.size(), 2u);
  EXPECT_EQ(children->items[0].Find("name")->string, "left");
  EXPECT_EQ(children->items[1].Find("name")->string, "right");
  const serve::JsonValue* annotations =
      children->items[1].Find("annotations");
  ASSERT_NE(annotations, nullptr);
  EXPECT_EQ(annotations->U64Field("leaf", 0), 9u);
}

TEST(TraceTreeTest, StoreKeepsMostRecentPerReason) {
  TraceStore store;
  for (std::size_t i = 0; i < TraceStore::kKeepPerReason + 5; ++i) {
    CompletedTrace trace;
    trace.trace_id = std::string(32, 'a');
    trace.reason = i % 2 == 0 ? "sampled" : "slow";
    store.Publish(std::move(trace));
  }
  EXPECT_EQ(store.total_published(), TraceStore::kKeepPerReason + 5);
  EXPECT_LE(store.Snapshot().size(), 2 * TraceStore::kKeepPerReason);
  store.Clear();
  EXPECT_TRUE(store.Snapshot().empty());
  EXPECT_EQ(store.total_published(), TraceStore::kKeepPerReason + 5);
}

#endif  // QDCBIR_DISABLE_OBS

}  // namespace
}  // namespace obs
}  // namespace qdcbir
