// Unit tests of the metric primitives: bucketing exactness and bounded
// percentile error of the log-linear histogram (checked against a
// reference sort), exact totals under concurrent recording from the
// thread pool, and the registry's stable-reference / JSON contracts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "qdcbir/core/rng.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/span.h"

namespace qdcbir {
namespace obs {
namespace {

TEST(HistogramBucketTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const std::size_t bucket = Histogram::BucketOf(v);
    EXPECT_EQ(bucket, v);
    EXPECT_DOUBLE_EQ(Histogram::BucketMidpoint(bucket), static_cast<double>(v));
  }
}

TEST(HistogramBucketTest, BucketsAreMonotonic) {
  std::size_t last = 0;
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v = v * 3 / 2 + 1) {
    const std::size_t bucket = Histogram::BucketOf(v);
    EXPECT_GE(bucket, last) << "value " << v;
    EXPECT_LT(bucket, Histogram::kNumBuckets);
    last = bucket;
  }
}

TEST(HistogramBucketTest, MidpointRelativeErrorIsBounded) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform over ~12 orders of magnitude, like latency values.
    const double u = rng.UniformDouble();
    const std::uint64_t v =
        static_cast<std::uint64_t>(std::exp(u * std::log(1e12))) + 1;
    const double mid = Histogram::BucketMidpoint(Histogram::BucketOf(v));
    // Bucket width is at most value/8; the midpoint is off by half that.
    EXPECT_NEAR(mid, static_cast<double>(v),
                static_cast<double>(v) / 8.0 + 0.5)
        << "value " << v;
  }
}

TEST(HistogramTest, PercentilesTrackReferenceSort) {
  Histogram histogram;
  Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    values.push_back(
        static_cast<std::uint64_t>(std::exp(u * std::log(1e9))));
  }
  for (const std::uint64_t v : values) histogram.Record(v);

  std::sort(values.begin(), values.end());
  const auto reference = [&](double q) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size()) + 0.5);
    return static_cast<double>(values[std::min(rank, values.size()) - 1]);
  };

  const Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.min, values.front());
  EXPECT_EQ(snap.max, values.back());
  for (const auto& [q, estimate] :
       {std::pair<double, double>{0.50, snap.p50},
        {0.90, snap.p90},
        {0.95, snap.p95},
        {0.99, snap.p99}}) {
    const double exact = reference(q);
    // Log-linear buckets guarantee ~6% relative error on the bucket
    // boundary; 15% leaves headroom for rank-rounding at the tails.
    EXPECT_NEAR(estimate, exact, exact * 0.15 + 1.0) << "quantile " << q;
  }
}

TEST(HistogramTest, SingleRepeatedValueClampsAllPercentiles) {
  Histogram histogram;
  for (int i = 0; i < 1000; ++i) histogram.Record(12345);
  const Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.min, 12345u);
  EXPECT_EQ(snap.max, 12345u);
  // Midpoints clamp into [min, max], so a constant stream reports exactly.
  EXPECT_DOUBLE_EQ(snap.p50, 12345.0);
  EXPECT_DOUBLE_EQ(snap.p99, 12345.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 12345.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram histogram;
  const Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(CounterTest, ConcurrentAddsFromPoolAreExact) {
  Counter counter;
  ThreadPool pool(8);
  constexpr std::size_t kAdds = 100000;
  pool.ParallelFor(0, kAdds, [&](std::size_t) { counter.Add(1); });
  EXPECT_EQ(counter.Value(), kAdds);
  counter.Add(5);
  EXPECT_EQ(counter.Value(), kAdds + 5);
  counter.Clear();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(HistogramTest, ConcurrentRecordsFromPoolAreExact) {
  Histogram histogram;
  ThreadPool pool(8);
  constexpr std::uint64_t kRecords = 50000;
  pool.ParallelFor(0, kRecords,
                   [&](std::size_t i) { histogram.Record(i); });
  const Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, kRecords);
  EXPECT_EQ(snap.sum, kRecords * (kRecords - 1) / 2);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kRecords - 1);
}

TEST(GaugeTest, ConcurrentBalancedAddsCancel) {
  Gauge gauge;
  ThreadPool pool(8);
  pool.ParallelFor(0, 20000, [&](std::size_t) {
    gauge.Add(1);
    gauge.Add(-1);
  });
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(GaugeTest, SetAndHighWaterMark) {
  Gauge gauge;
  gauge.Add(5);
  EXPECT_EQ(gauge.Value(), 5);
  EXPECT_EQ(gauge.Max(), 5);
  gauge.Set(3);
  EXPECT_EQ(gauge.Value(), 3);
  EXPECT_EQ(gauge.Max(), 5);  // high-water survives Set
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Clear();
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(gauge.Max(), 0);
}

TEST(MetricsRegistryTest, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.counter");
  Counter& b = registry.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("span.test");
  Histogram& h2 = registry.SpanHistogram("test");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, SnapshotJsonListsRegisteredMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("alpha.count").Add(3);
  registry.GetGauge("beta.depth").Set(7);
  registry.GetHistogram("gamma.ns").Record(100);

  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"alpha.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"beta.depth\":{\"value\":7,\"max\":7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gamma.ns\":{\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("reset.me");
  counter.Add(42);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(&registry.GetCounter("reset.me"), &counter);
}

TEST(SpanMacroTest, RecordsIntoGlobalSpanHistogram) {
  Histogram& histogram =
      MetricsRegistry::Global().SpanHistogram("obs_test.macro");
  const std::uint64_t before = histogram.Snap().count;
  for (int i = 0; i < 3; ++i) {
    QDCBIR_SPAN("obs_test.macro");
  }
  EXPECT_EQ(histogram.Snap().count, before + 3);
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
