#include "qdcbir/obs/profiler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/span.h"
#include "qdcbir/obs/span_stack.h"
#include "qdcbir/obs/trace_context.h"
#include "qdcbir/serve/json_mini.h"

namespace qdcbir {
namespace obs {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kUnderSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kUnderSanitizer = true;
#else
constexpr bool kUnderSanitizer = false;
#endif
#else
constexpr bool kUnderSanitizer = false;
#endif

TEST(SpanStackTest, PushPopTracksInnermost) {
  SpanStack stack;
  EXPECT_EQ(stack.Innermost(), nullptr);
  stack.Push("outer");
  EXPECT_STREQ(stack.Innermost(), "outer");
  stack.Push("inner");
  EXPECT_STREQ(stack.Innermost(), "inner");
  stack.Pop();
  EXPECT_STREQ(stack.Innermost(), "outer");
  stack.Pop();
  EXPECT_EQ(stack.Innermost(), nullptr);
  stack.Pop();  // underflow is a clamped no-op
  EXPECT_EQ(stack.Innermost(), nullptr);
}

TEST(SpanStackTest, OverflowCountsDepthButClampsRecording) {
  SpanStack stack;
  for (std::uint32_t i = 0; i < SpanStack::kMaxDepth + 8; ++i) {
    stack.Push(i + 1 == SpanStack::kMaxDepth ? "deepest-recorded" : "filler");
  }
  EXPECT_EQ(stack.depth.load(), SpanStack::kMaxDepth + 8);
  // Frames past kMaxDepth were counted but not stored; the innermost
  // *recorded* frame is reported.
  EXPECT_STREQ(stack.Innermost(), "deepest-recorded");
  for (std::uint32_t i = 0; i < SpanStack::kMaxDepth + 8; ++i) stack.Pop();
  EXPECT_EQ(stack.Innermost(), nullptr);
}

TEST(SpanStackTest, ScopedSpanMirrorsOntoCurrentStack) {
  const std::uint32_t base = CurrentSpanStack().depth.load();
  {
    QDCBIR_SPAN("test.outer");
    EXPECT_STREQ(CurrentSpanName(), "test.outer");
    {
      QDCBIR_SPAN("test.inner");
      EXPECT_STREQ(CurrentSpanName(), "test.inner");
    }
    EXPECT_STREQ(CurrentSpanName(), "test.outer");
  }
  EXPECT_EQ(CurrentSpanStack().depth.load(), base);
}

TEST(SpanStackTest, ScopedTraceContextMirrorsTraceId) {
  const TraceContext context = NewTraceContext();
  {
    const ScopedTraceContext scoped(context);
    EXPECT_EQ(CurrentSpanStack().trace_hi, context.trace_hi);
    EXPECT_EQ(CurrentSpanStack().trace_lo, context.trace_lo);
  }
  EXPECT_EQ(CurrentSpanStack().trace_hi, 0u);
  EXPECT_EQ(CurrentSpanStack().trace_lo, 0u);
}

TEST(SpanStackTest, ScopedSpanTagNullIsNoOp) {
  const std::uint32_t base = CurrentSpanStack().depth.load();
  {
    const ScopedSpanTag tag(nullptr);
    EXPECT_EQ(CurrentSpanStack().depth.load(), base);
  }
  EXPECT_EQ(CurrentSpanStack().depth.load(), base);
}

/// Collects every distinct span name observed across a parallel region.
class NameCollector {
 public:
  void Note() {
    const char* name = CurrentSpanName();
    std::lock_guard<std::mutex> lock(mu_);
    names_.insert(name != nullptr ? name : "(null)");
  }
  std::set<std::string> names() {
    std::lock_guard<std::mutex> lock(mu_);
    return names_;
  }

 private:
  std::mutex mu_;
  std::set<std::string> names_;
};

TEST(SpanPropagationTest, PoolTasksAttributeToEnqueuingSpan) {
  ThreadPool pool(4);
  NameCollector collector;
  {
    QDCBIR_SPAN("test.enqueue");
    pool.ParallelFor(0, 64, [&](std::size_t) { collector.Note(); });
  }
  // Both worker-executed and caller-inline iterations must see the
  // enqueuing span as innermost.
  EXPECT_EQ(collector.names(), std::set<std::string>{"test.enqueue"});
  EXPECT_EQ(CurrentSpanStack().depth.load(), 0u);
}

TEST(SpanPropagationTest, NestedParallelForKeepsInnermostSpan) {
  ThreadPool pool(4);
  NameCollector collector;
  {
    QDCBIR_SPAN("test.outer");
    pool.ParallelFor(0, 8, [&](std::size_t) {
      QDCBIR_SPAN("test.nested");
      pool.ParallelFor(0, 8, [&](std::size_t) { collector.Note(); });
    });
  }
  // The inner region was enqueued under test.nested on whichever thread ran
  // the outer iteration; no inner iteration may fall back to test.outer or
  // to no span at all.
  EXPECT_EQ(collector.names(), std::set<std::string>{"test.nested"});
  EXPECT_EQ(CurrentSpanStack().depth.load(), 0u);
}

TEST(SpanPropagationTest, PostedTasksCarrySpanAndTrace) {
  ThreadPool pool(2);
  const TraceContext context = NewTraceContext();
  std::mutex mu;
  std::string seen_name;
  std::uint64_t seen_hi = 0;
  {
    const ScopedTraceContext scoped(context);
    QDCBIR_SPAN("test.post");
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&] {
      std::lock_guard<std::mutex> lock(mu);
      const char* name = CurrentSpanName();
      seen_name = name != nullptr ? name : "(null)";
      seen_hi = CurrentSpanStack().trace_hi;
    });
    pool.Run(std::move(tasks));
  }
  EXPECT_EQ(seen_name, "test.post");
  EXPECT_EQ(seen_hi, context.trace_hi);
}

ProfileSample MakeSample(const char* span, std::uint64_t hi,
                         std::uint64_t lo) {
  ProfileSample sample;
  sample.span = span;
  sample.trace_hi = hi;
  sample.trace_lo = lo;
  sample.num_frames = 2;
  sample.frames[0] = 0x1000;
  sample.frames[1] = 0x2000;
  return sample;
}

TEST(ProfilerRenderTest, CollapsedGroupsBySpanRootAndCounts) {
  std::vector<ProfileSample> samples;
  samples.push_back(MakeSample("qd.feedback", 0, 0));
  samples.push_back(MakeSample("qd.feedback", 0, 0));
  samples.push_back(MakeSample(nullptr, 0, 0));
  const std::string text = Profiler::RenderCollapsed(samples);
  // Two identical tagged samples fold into one line with count 2; the
  // untagged one roots at (no-span).
  EXPECT_NE(text.find("qd.feedback;"), std::string::npos) << text;
  EXPECT_NE(text.find(" 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("(no-span);"), std::string::npos) << text;
  // Every line is `stack count`.
  std::size_t lines = 0;
  for (std::size_t pos = 0; (pos = text.find('\n', pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(ProfilerRenderTest, CollapsedSanitizesSeparatorCharacters) {
  std::vector<ProfileSample> samples;
  ProfileSample sample = MakeSample("bad span;name", 0, 0);
  sample.num_frames = 0;
  samples.push_back(sample);
  const std::string text = Profiler::RenderCollapsed(samples);
  // Spaces and semicolons in the span frame would corrupt the collapsed
  // format (both are structural); they must be rewritten.
  EXPECT_EQ(text, "bad_span_name 1\n");
}

TEST(ProfilerRenderTest, JsonAggregatesSpansAndTraces) {
  std::vector<ProfileSample> samples;
  samples.push_back(MakeSample("qd.feedback", 0xAB, 0xCD));
  samples.push_back(MakeSample("qd.feedback", 0xAB, 0xCD));
  samples.push_back(MakeSample("serve.api.query", 0, 0));
  const std::string json =
      Profiler::RenderJson(samples, /*hz=*/99, /*seconds=*/2.0,
                           /*dropped=*/7);
  StatusOr<serve::JsonValue> parsed = serve::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed->U64Field("hz", 0), 99u);
  EXPECT_EQ(parsed->U64Field("samples", 0), 3u);
  EXPECT_EQ(parsed->U64Field("dropped", 0), 7u);
  const serve::JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->U64Field("qd.feedback", 0), 2u);
  EXPECT_EQ(spans->U64Field("serve.api.query", 0), 1u);
  const serve::JsonValue* traces = parsed->Find("traces");
  ASSERT_NE(traces, nullptr);
  EXPECT_EQ(
      traces->U64Field("00000000000000ab00000000000000cd", 0), 2u);
  const serve::JsonValue* stacks = parsed->Find("stacks");
  ASSERT_NE(stacks, nullptr);
  EXPECT_TRUE(stacks->is_array());
  EXPECT_EQ(stacks->items.size(), 2u);
}

TEST(ProfilerTest, CollectSinceOnEmptyRingIsEmpty) {
  // Before any Start, the cursor is stable and collection yields nothing.
  const std::uint64_t cursor = Profiler::Global().SampleCursor();
  EXPECT_TRUE(Profiler::Global().CollectSince(cursor).empty());
}

TEST(ProfilerTest, CapturesSpanAttributedSamplesWhileBurningCpu) {
#if !defined(__linux__)
  GTEST_SKIP() << "sampling profiler is Linux-only";
#else
  if (kUnderSanitizer) {
    GTEST_SKIP() << "signal delivery timing unreliable under sanitizers";
  }
  Profiler& profiler = Profiler::Global();
  Profiler::RegisterCurrentThread();
  ProfilerOptions options;
  options.hz = 997;  // dense sampling keeps the burn window short
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  EXPECT_TRUE(profiler.running());
  const std::uint64_t cursor = profiler.SampleCursor();

  const TraceContext context = NewTraceContext();
  {
    const ScopedTraceContext scoped(context);
    QDCBIR_SPAN("test.burn");
    const std::uint64_t start = MonotonicNanos();
    volatile double sink = 1.0;
    while (MonotonicNanos() - start < 400000000ull) {
      for (int i = 0; i < 4096; ++i) sink = sink * 1.0000001 + 0.5;
    }
  }
  profiler.Stop();
  EXPECT_FALSE(profiler.running());

  const std::vector<ProfileSample> samples = profiler.CollectSince(cursor);
  Profiler::UnregisterCurrentThread();
  ASSERT_FALSE(samples.empty())
      << "400ms of CPU at 997 Hz produced no samples";
  std::size_t attributed = 0;
  std::size_t traced = 0;
  std::size_t with_frames = 0;
  for (const ProfileSample& sample : samples) {
    if (sample.span != nullptr &&
        std::strcmp(sample.span, "test.burn") == 0) {
      ++attributed;
    }
    if (sample.trace_hi == context.trace_hi &&
        sample.trace_lo == context.trace_lo) {
      ++traced;
    }
    if (sample.num_frames >= 1) ++with_frames;
  }
  EXPECT_GE(attributed, 1u) << samples.size() << " samples, none in span";
  EXPECT_GE(traced, 1u);
  EXPECT_EQ(with_frames, samples.size());
#endif
}

TEST(ProfilerTest, StartWhileRunningFails) {
#if !defined(__linux__)
  GTEST_SKIP() << "sampling profiler is Linux-only";
#else
  Profiler& profiler = Profiler::Global();
  std::string error;
  ASSERT_TRUE(profiler.Start(ProfilerOptions{}, &error)) << error;
  EXPECT_FALSE(profiler.Start(ProfilerOptions{}, &error));
  EXPECT_FALSE(error.empty());
  profiler.Stop();
#endif
}

}  // namespace
}  // namespace obs
}  // namespace qdcbir
