// Tests of the feature-importance extension (paper §6 future work): the QD
// session's localized subqueries can rank under per-dimension weights.

#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

/// One cluster pair distinguishable only in dimension 0, embedded with a
/// confounder pair distinguishable only in dimension 1.
RfsTree MakeTree(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> points;
  // Cluster A (ids 0..39): d0 ~ 0.   Cluster B (ids 40..79): d0 ~ 10.
  // Both clusters split in d1 between 0 and 10 at random.
  for (int i = 0; i < 80; ++i) {
    const double d0 = (i < 40 ? 0.0 : 10.0) + rng.Gaussian(0.0, 0.2);
    const double d1 = (rng.Bernoulli(0.5) ? 0.0 : 10.0) + rng.Gaussian(0.0, 0.2);
    points.push_back(FeatureVector{d0, d1, rng.Gaussian(0.0, 0.2)});
  }
  RfsBuildOptions options;
  options.tree.max_entries = 100;  // one leaf: isolates the ranking metric
  options.tree.min_entries = 40;
  options.representatives.fraction = 0.2;
  return RfsBuilder::Build(std::move(points), options).value();
}

std::vector<ImageId> MarkFirstDisplayed(QdSession& session, ImageId lo,
                                        ImageId hi, std::size_t count) {
  auto display = session.Start();
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 100 && picks.size() < count; ++browse) {
    for (const DisplayGroup& g : display) {
      for (const ImageId id : g.images) {
        if (id >= lo && id < hi && picks.size() < count &&
            std::find(picks.begin(), picks.end(), id) == picks.end()) {
          picks.push_back(id);
        }
      }
    }
    if (picks.size() < count) display = session.Resample();
  }
  return picks;
}

TEST(QdFeatureWeightsTest, UniformWeightsMatchUnweighted) {
  const RfsTree tree = MakeTree(3);
  QdOptions unweighted;
  unweighted.seed = 9;
  QdOptions uniform = unweighted;
  uniform.feature_weights = std::vector<double>(3, 1.0);

  QdSession a(&tree, unweighted);
  QdSession b(&tree, uniform);
  const auto picks_a = MarkFirstDisplayed(a, 0, 40, 3);
  const auto picks_b = MarkFirstDisplayed(b, 0, 40, 3);
  ASSERT_EQ(picks_a, picks_b);  // same seed, same displays
  ASSERT_FALSE(picks_a.empty());
  ASSERT_TRUE(a.Feedback(picks_a).ok());
  ASSERT_TRUE(b.Feedback(picks_b).ok());
  const QdResult ra = a.Finalize(20).value();
  const QdResult rb = b.Finalize(20).value();
  EXPECT_EQ(ra.Flatten(), rb.Flatten());
}

TEST(QdFeatureWeightsTest, ZeroingADimensionIgnoresIt) {
  // With d1 zero-weighted, ranking around cluster-A marks must return
  // cluster-A members regardless of their d1 value; with d1 heavily
  // weighted, the d1 confounder dominates and members of cluster B with
  // matching d1 can outrank cluster-A members.
  const RfsTree tree = MakeTree(5);
  QdOptions ignore_d1;
  ignore_d1.seed = 11;
  ignore_d1.feature_weights = {1.0, 0.0, 1.0};

  QdSession session(&tree, ignore_d1);
  const auto picks = MarkFirstDisplayed(session, 0, 40, 3);
  ASSERT_GE(picks.size(), 1u);
  ASSERT_TRUE(session.Feedback(picks).ok());
  const QdResult result = session.Finalize(30).value();
  // All 30 results under the d1-blind metric lie in cluster A (d0 ~ 0),
  // because d0 separates the clusters by 10 >> noise.
  int from_a = 0;
  for (const ImageId id : result.Flatten()) {
    if (id < 40) ++from_a;
  }
  EXPECT_EQ(from_a, 30);
}

TEST(QdFeatureWeightsTest, GroupWeightsLayout) {
  const std::vector<double> w = MakeGroupWeights(2.0, 3.0, 4.0);
  ASSERT_EQ(w.size(), kPaperFeatureDim);
  EXPECT_EQ(w[0], 2.0);
  EXPECT_EQ(w[8], 2.0);
  EXPECT_EQ(w[9], 3.0);
  EXPECT_EQ(w[18], 3.0);
  EXPECT_EQ(w[19], 4.0);
  EXPECT_EQ(w[36], 4.0);
}

TEST(QdFeatureWeightsTest, FinalizeRejectsMismatchedWeightCount) {
  // The tree's features are 3-dimensional; a 2-weight vector must surface
  // as InvalidArgument from Finalize instead of aborting mid-scan.
  const RfsTree tree = MakeTree(17);
  QdOptions options;
  options.seed = 21;
  options.feature_weights = {1.0, 1.0};
  QdSession session(&tree, options);
  const auto picks = MarkFirstDisplayed(session, 0, 80, 3);
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  const StatusOr<QdResult> result = session.Finalize(10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(QdFeatureWeightsTest, FinalizeRejectsNegativeWeights) {
  const RfsTree tree = MakeTree(19);
  QdOptions options;
  options.seed = 23;
  options.feature_weights = {1.0, -1.0, 1.0};
  QdSession session(&tree, options);
  const auto picks = MarkFirstDisplayed(session, 0, 80, 3);
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  EXPECT_FALSE(session.Finalize(10).ok());
}

TEST(QdFeatureWeightsTest, WeightedSessionStatsStillTracked) {
  const RfsTree tree = MakeTree(7);
  QdOptions options;
  options.seed = 13;
  options.feature_weights = {1.0, 1.0, 1.0};
  QdSession session(&tree, options);
  const auto picks = MarkFirstDisplayed(session, 0, 80, 3);
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  const QdResult result = session.Finalize(10).value();
  EXPECT_EQ(result.TotalImages(), 10u);
  EXPECT_EQ(session.stats().localized_subqueries, result.groups.size());
}

}  // namespace
}  // namespace qdcbir
