#include "qdcbir/query/qd_engine.h"

#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

/// Builds `clusters` tight, well-separated clusters of `per_cluster` points.
/// Image ids are laid out consecutively: cluster c owns
/// [c * per_cluster, (c+1) * per_cluster).
RfsTree MakeClusteredTree(std::size_t clusters, std::size_t per_cluster,
                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> points;
  for (std::size_t c = 0; c < clusters; ++c) {
    // Cluster centers on a coarse grid so clusters are far apart.
    const double cx = static_cast<double>(c % 4) * 40.0;
    const double cy = static_cast<double>(c / 4) * 40.0;
    for (std::size_t i = 0; i < per_cluster; ++i) {
      points.push_back(FeatureVector{cx + rng.Gaussian(0.0, 0.4),
                                     cy + rng.Gaussian(0.0, 0.4),
                                     rng.Gaussian(0.0, 0.4)});
    }
  }
  RfsBuildOptions options;
  options.tree.max_entries = 16;
  options.tree.min_entries = 6;
  options.representatives.fraction = 0.10;
  return RfsBuilder::Build(std::move(points), options).value();
}

/// Picks displayed images whose id belongs to [lo, hi).
std::vector<ImageId> PickInRange(const std::vector<DisplayGroup>& display,
                                 ImageId lo, ImageId hi, std::size_t max_picks) {
  std::vector<ImageId> picks;
  for (const DisplayGroup& g : display) {
    for (const ImageId id : g.images) {
      if (id >= lo && id < hi && picks.size() < max_picks) picks.push_back(id);
    }
  }
  return picks;
}

QdOptions TestOptions() {
  QdOptions options;
  options.display_size = 21;
  options.seed = 5;
  return options;
}

TEST(QdSessionTest, FeedbackBeforeStartFails) {
  const RfsTree tree = MakeClusteredTree(4, 30, 1);
  QdSession session(&tree, TestOptions());
  EXPECT_EQ(session.Feedback({0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QdSessionTest, StartDisplaysRootRepresentatives) {
  const RfsTree tree = MakeClusteredTree(4, 30, 2);
  QdSession session(&tree, TestOptions());
  const auto display = session.Start();
  ASSERT_FALSE(display.empty());
  EXPECT_EQ(display[0].node, tree.root());
  const auto& root_reps = tree.info(tree.root()).representatives;
  const std::set<ImageId> reps(root_reps.begin(), root_reps.end());
  for (const ImageId id : display[0].images) {
    EXPECT_TRUE(reps.count(id) > 0);
  }
  EXPECT_EQ(session.round(), 0);
}

TEST(QdSessionTest, FinalizeWithoutFeedbackFails) {
  const RfsTree tree = MakeClusteredTree(4, 30, 3);
  QdSession session(&tree, TestOptions());
  session.Start();
  EXPECT_EQ(session.Finalize(10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QdSessionTest, FinalizeRejectsZeroK) {
  const RfsTree tree = MakeClusteredTree(2, 40, 4);
  QdSession session(&tree, TestOptions());
  auto display = session.Start();
  // Browse until a relevant pick from cluster 0 shows up.
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 50 && picks.empty(); ++browse) {
    picks = PickInRange(display, 0, 40, 1);
    if (picks.empty()) display = session.Resample();
  }
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  EXPECT_EQ(session.Finalize(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QdSessionTest, FeedbackRejectsUndisplayedImage) {
  const RfsTree tree = MakeClusteredTree(4, 30, 5);
  QdSession session(&tree, TestOptions());
  session.Start();
  // An id that cannot have been displayed: collect the display and pick an
  // absent id.
  EXPECT_EQ(session.Feedback({kInvalidImageId}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QdSessionTest, ResampleAccumulatesValidPicks) {
  const RfsTree tree = MakeClusteredTree(4, 30, 6);
  QdSession session(&tree, TestOptions());
  auto first = session.Start();
  auto second = session.Resample();
  EXPECT_EQ(session.round(), 0);  // resampling does not advance the round
  // Picks from the *first* display are still valid after resampling.
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(first[0].images.empty());
  EXPECT_TRUE(session.Feedback({first[0].images[0]}).ok());
}

TEST(QdSessionTest, DecompositionNarrowsFrontier) {
  const RfsTree tree = MakeClusteredTree(8, 30, 7);
  QdSession session(&tree, TestOptions());
  auto display = session.Start();
  ASSERT_EQ(session.frontier().size(), 1u);

  // Mark everything from clusters 0 and 1 across a few browses.
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 60 && picks.size() < 4; ++browse) {
    for (const ImageId id : PickInRange(display, 0, 60, 4 - picks.size())) {
      picks.push_back(id);
    }
    display = session.Resample();
  }
  ASSERT_FALSE(picks.empty());
  const auto next = session.Feedback(picks);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(session.round(), 1);
  // The frontier moved off the root.
  for (const NodeId node : session.frontier()) {
    EXPECT_NE(node, tree.root());
  }
}

TEST(QdSessionTest, EmptyFeedbackKeepsFrontier) {
  const RfsTree tree = MakeClusteredTree(4, 30, 8);
  QdSession session(&tree, TestOptions());
  session.Start();
  const auto frontier_before = session.frontier();
  ASSERT_TRUE(session.Feedback({}).ok());
  EXPECT_EQ(session.frontier(), frontier_before);
  EXPECT_EQ(session.round(), 1);
}

/// Full session helper: marks images of the given id ranges for `rounds`
/// rounds, then finalizes with result size k.
StatusOr<QdResult> RunScriptedSession(const RfsTree& tree, ImageId lo,
                                      ImageId hi, int rounds, std::size_t k,
                                      QdSession* session_out = nullptr) {
  static QdSession* leak = nullptr;  // keep it simple: local session
  (void)leak;
  QdSession session(&tree, TestOptions());
  auto display = session.Start();
  for (int r = 0; r < rounds; ++r) {
    std::vector<ImageId> picks;
    std::set<ImageId> seen;
    for (int browse = 0; browse < 80 && picks.size() < 6; ++browse) {
      for (const ImageId id : PickInRange(display, lo, hi, 6 - picks.size())) {
        if (seen.insert(id).second) picks.push_back(id);
      }
      if (picks.size() >= 6) break;
      display = session.Resample();
    }
    StatusOr<std::vector<DisplayGroup>> next = session.Feedback(picks);
    if (!next.ok()) return next.status();
    display = std::move(next).value();
  }
  StatusOr<QdResult> result = session.Finalize(k);
  if (session_out != nullptr) *session_out = std::move(session);
  return result;
}

TEST(QdSessionTest, RetrievesFromMultipleDistantClusters) {
  // Relevant = clusters 0 and 1 (ids 0..59), far apart in feature space.
  const RfsTree tree = MakeClusteredTree(8, 30, 9);
  const QdResult result =
      RunScriptedSession(tree, 0, 60, 3, 40).value();

  EXPECT_GE(result.groups.size(), 2u);
  // Results come from both clusters.
  const auto flat = result.Flatten();
  int from_first = 0, from_second = 0;
  for (const ImageId id : flat) {
    if (id < 30) {
      ++from_first;
    } else if (id < 60) {
      ++from_second;
    }
  }
  EXPECT_GT(from_first, 5);
  EXPECT_GT(from_second, 5);
}

TEST(QdSessionTest, ResultSizeMatchesK) {
  const RfsTree tree = MakeClusteredTree(8, 30, 10);
  const QdResult result = RunScriptedSession(tree, 0, 60, 3, 24).value();
  EXPECT_EQ(result.TotalImages(), 24u);
  // No duplicates across groups.
  const auto flat = result.Flatten();
  const std::set<ImageId> unique(flat.begin(), flat.end());
  EXPECT_EQ(unique.size(), flat.size());
}

TEST(QdSessionTest, GroupsOrderedByRankingScore) {
  const RfsTree tree = MakeClusteredTree(8, 30, 11);
  const QdResult result = RunScriptedSession(tree, 0, 90, 3, 30).value();
  for (std::size_t i = 1; i < result.groups.size(); ++i) {
    EXPECT_LE(result.groups[i - 1].ranking_score,
              result.groups[i].ranking_score);
  }
}

TEST(QdSessionTest, GroupImagesSortedBySimilarity) {
  const RfsTree tree = MakeClusteredTree(6, 30, 12);
  const QdResult result = RunScriptedSession(tree, 0, 60, 3, 30).value();
  for (const ResultGroup& g : result.groups) {
    for (std::size_t i = 1; i < g.images.size(); ++i) {
      EXPECT_LE(g.images[i - 1].distance_squared,
                g.images[i].distance_squared);
    }
  }
}

TEST(QdSessionTest, FlattenBySimilarityIsGloballySorted) {
  const RfsTree tree = MakeClusteredTree(6, 30, 13);
  QdResult result = RunScriptedSession(tree, 0, 60, 3, 30).value();
  const auto flat = result.FlattenBySimilarity();
  EXPECT_EQ(flat.size(), result.TotalImages());
}

TEST(QdSessionTest, BoundaryThresholdZeroForcesExpansion) {
  const RfsTree tree = MakeClusteredTree(8, 30, 14);
  QdOptions options = TestOptions();
  options.boundary_threshold = 0.0;  // any nonzero offset expands
  QdSession session(&tree, options);
  auto display = session.Start();
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 80 && picks.empty(); ++browse) {
    picks = PickInRange(display, 0, 30, 2);
    if (picks.empty()) display = session.Resample();
  }
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  const QdResult result = session.Finalize(10).value();
  // With threshold 0 every query image is "near the boundary": the search
  // expands all the way to the root.
  EXPECT_GT(session.stats().boundary_expansions, 0u);
  for (const ResultGroup& g : result.groups) {
    EXPECT_EQ(g.search_node, tree.root());
  }
}

TEST(QdSessionTest, HighThresholdAvoidsExpansion) {
  const RfsTree tree = MakeClusteredTree(8, 30, 15);
  QdOptions options = TestOptions();
  options.boundary_threshold = 10.0;  // effectively never expand
  QdSession session(&tree, options);
  auto display = session.Start();
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 80 && picks.empty(); ++browse) {
    picks = PickInRange(display, 0, 30, 2);
    if (picks.empty()) display = session.Resample();
  }
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  session.Finalize(10).value();
  EXPECT_EQ(session.stats().boundary_expansions, 0u);
}

TEST(QdSessionTest, StatsTrackSessionActivity) {
  const RfsTree tree = MakeClusteredTree(8, 30, 16);
  QdSession session(&tree, TestOptions());
  auto display = session.Start();
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 80 && picks.size() < 3; ++browse) {
    for (const ImageId id : PickInRange(display, 0, 60, 3 - picks.size())) {
      picks.push_back(id);
    }
    display = session.Resample();
  }
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  const QdResult result = session.Finalize(12).value();
  const QdSessionStats& stats = session.stats();
  EXPECT_EQ(stats.feedback_rounds, 1u);
  EXPECT_GT(stats.nodes_touched, 0u);
  EXPECT_EQ(stats.localized_subqueries, result.groups.size());
  EXPECT_GT(stats.knn_candidates, 0u);
}

TEST(QdSessionTest, DisplayAllocationIsProportionalToSubtreeSize) {
  // After decomposition, larger subtrees get more display slots; every
  // active subquery gets at least one.
  const RfsTree tree = MakeClusteredTree(8, 30, 20);
  QdOptions options = TestOptions();
  options.display_size = 21;
  QdSession session(&tree, options);
  auto display = session.Start();
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 80 && picks.size() < 6; ++browse) {
    for (const ImageId id : PickInRange(display, 0, 120, 6 - picks.size())) {
      if (std::find(picks.begin(), picks.end(), id) == picks.end()) {
        picks.push_back(id);
      }
    }
    display = session.Resample();
  }
  ASSERT_GE(picks.size(), 2u);
  const auto next = session.Feedback(picks);
  ASSERT_TRUE(next.ok());
  std::size_t total = 0;
  for (const DisplayGroup& g : *next) {
    EXPECT_GE(g.images.size(), 1u);
    total += g.images.size();
  }
  EXPECT_LE(total, options.display_size + next->size());
}

TEST(QdSessionTest, ExpansionClimbsMultipleLevelsWhenNeeded) {
  // With a moderate threshold, marks near a leaf's edge expand one or more
  // levels; the search node must always be an ancestor of the leaf.
  const RfsTree tree = MakeClusteredTree(8, 30, 21);
  QdOptions options = TestOptions();
  options.boundary_threshold = 0.05;  // aggressive expansion
  QdSession session(&tree, options);
  auto display = session.Start();
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 80 && picks.size() < 3; ++browse) {
    for (const ImageId id : PickInRange(display, 0, 30, 3 - picks.size())) {
      if (std::find(picks.begin(), picks.end(), id) == picks.end()) {
        picks.push_back(id);
      }
    }
    display = session.Resample();
  }
  ASSERT_FALSE(picks.empty());
  ASSERT_TRUE(session.Feedback(picks).ok());
  const QdResult result = session.Finalize(15).value();
  for (const ResultGroup& g : result.groups) {
    // search_node is an ancestor-or-self of the leaf.
    NodeId walk = g.leaf;
    bool found = walk == g.search_node;
    while (!found && tree.info(walk).parent != kInvalidNodeId) {
      walk = tree.info(walk).parent;
      found = walk == g.search_node;
    }
    EXPECT_TRUE(found) << "search node " << g.search_node
                       << " is not an ancestor of leaf " << g.leaf;
  }
}

TEST(QdSessionTest, KSmallerThanSubqueriesKeepsStrongestGroups) {
  // Marks land in several distinct clusters but only 2 results are
  // requested: the subqueries with the most relevant marks win.
  const RfsTree tree = MakeClusteredTree(8, 30, 22);
  QdSession session(&tree, TestOptions());
  auto display = session.Start();
  std::vector<ImageId> picks;
  for (int browse = 0; browse < 120 && picks.size() < 8; ++browse) {
    for (const ImageId id : PickInRange(display, 0, 120, 8 - picks.size())) {
      if (std::find(picks.begin(), picks.end(), id) == picks.end()) {
        picks.push_back(id);
      }
    }
    display = session.Resample();
  }
  ASSERT_GE(picks.size(), 3u);
  ASSERT_TRUE(session.Feedback(picks).ok());
  const QdResult result = session.Finalize(2).value();
  EXPECT_LE(result.groups.size(), 2u);
  EXPECT_EQ(result.TotalImages(), 2u);
}

TEST(QdSessionTest, StartResetsState) {
  const RfsTree tree = MakeClusteredTree(4, 30, 17);
  QdSession session(&tree, TestOptions());
  auto display = session.Start();
  ASSERT_FALSE(display.empty());
  ASSERT_FALSE(display[0].images.empty());
  ASSERT_TRUE(session.Feedback({display[0].images[0]}).ok());
  EXPECT_EQ(session.round(), 1);
  session.Start();
  EXPECT_EQ(session.round(), 0);
  EXPECT_EQ(session.frontier().size(), 1u);
  EXPECT_EQ(session.Finalize(5).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace qdcbir
