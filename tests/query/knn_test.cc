#include "qdcbir/query/knn.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> LinePoints(std::size_t n) {
  // Points at x = 0, 1, 2, ... on a line: distances are predictable.
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{static_cast<double>(i), 0.0});
  }
  return out;
}

TEST(BruteForceKnnTest, FindsExactNeighbors) {
  const auto table = LinePoints(10);
  const Ranking r = BruteForceKnn(table, FeatureVector{3.2, 0.0}, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 3u);
  EXPECT_EQ(r[1].id, 4u);
  EXPECT_EQ(r[2].id, 2u);
}

TEST(BruteForceKnnTest, KZeroReturnsEmpty) {
  EXPECT_TRUE(BruteForceKnn(LinePoints(5), FeatureVector{0.0, 0.0}, 0).empty());
}

TEST(BruteForceKnnTest, KLargerThanTableReturnsAll) {
  const Ranking r = BruteForceKnn(LinePoints(4), FeatureVector{0.0, 0.0}, 10);
  EXPECT_EQ(r.size(), 4u);
}

TEST(BruteForceKnnTest, ResultsSortedAscending) {
  Rng rng(3);
  std::vector<FeatureVector> table;
  for (int i = 0; i < 200; ++i) {
    table.push_back(
        FeatureVector{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)});
  }
  const Ranking r = BruteForceKnn(table, FeatureVector{0.0, 0.0}, 50);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_LE(r[i - 1].distance_squared, r[i].distance_squared);
  }
}

TEST(BruteForceKnnSubsetTest, OnlyConsidersCandidates) {
  const auto table = LinePoints(10);
  const std::vector<ImageId> candidates = {7, 8, 9};
  const Ranking r =
      BruteForceKnnSubset(table, candidates, FeatureVector{0.0, 0.0}, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].id, 7u);
  EXPECT_EQ(r[1].id, 8u);
}

TEST(BruteForceKnnSubsetTest, EmptyCandidates) {
  EXPECT_TRUE(
      BruteForceKnnSubset(LinePoints(5), {}, FeatureVector{0.0, 0.0}, 3)
          .empty());
}

TEST(BruteForceKnnWithMetricTest, WeightedMetricChangesRanking) {
  // Two points: (2, 0) and (0, 3). Plain L2 prefers the first; weighting
  // the x dimension heavily prefers the second.
  const std::vector<FeatureVector> table = {FeatureVector{2.0, 0.0},
                                            FeatureVector{0.0, 3.0}};
  const FeatureVector query{0.0, 0.0};
  L2Distance plain;
  EXPECT_EQ(BruteForceKnnWithMetric(table, query, 1, plain)[0].id, 0u);
  WeightedL2Distance weighted({100.0, 0.1});
  EXPECT_EQ(BruteForceKnnWithMetric(table, query, 1, weighted)[0].id, 1u);
}

TEST(MergeRankingsTest, DeduplicatesKeepingBestDistance) {
  const Ranking a = {{1, 4.0}, {2, 9.0}};
  const Ranking b = {{2, 1.0}, {3, 16.0}};
  const Ranking merged = MergeRankings({a, b}, 10);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 2u);  // best distance 1.0 wins
  EXPECT_DOUBLE_EQ(merged[0].distance_squared, 1.0);
  EXPECT_EQ(merged[1].id, 1u);
  EXPECT_EQ(merged[2].id, 3u);
}

TEST(MergeRankingsTest, TruncatesToK) {
  const Ranking a = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  EXPECT_EQ(MergeRankings({a}, 2).size(), 2u);
}

TEST(MergeRankingsTest, EmptyInputs) {
  EXPECT_TRUE(MergeRankings({}, 5).empty());
  EXPECT_TRUE(MergeRankings({Ranking{}, Ranking{}}, 5).empty());
}

std::vector<FeatureVector> RandomTable(std::size_t n, std::size_t dim,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.UniformDouble(-3.0, 3.0);
    out.push_back(std::move(v));
  }
  return out;
}

TEST(BruteForceKnnBlockedTest, MatchesPerVectorScanBitwise) {
  // Parity across a size that exercises full and tail blocks.
  for (const std::size_t n : {1u, 8u, 9u, 100u, 103u}) {
    const auto table = RandomTable(n, 11, 41);
    const FeatureBlockTable blocks(table);
    FeatureVector query(11);
    for (std::size_t d = 0; d < 11; ++d) query[d] = 0.1 * double(d) - 0.5;
    const Ranking legacy = BruteForceKnn(table, query, 20);
    const Ranking blocked = BruteForceKnnBlocked(blocks, query, 20);
    ASSERT_EQ(legacy.size(), blocked.size()) << "n=" << n;
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(legacy[i].id, blocked[i].id) << "n=" << n;
      EXPECT_EQ(legacy[i].distance_squared, blocked[i].distance_squared)
          << "n=" << n;  // bitwise, per the kernel parity contract
    }
  }
}

TEST(BruteForceWeightedKnnBlockedTest, MatchesMetricScanBitwise) {
  for (const std::size_t n : {1u, 8u, 9u, 100u, 103u}) {
    const auto table = RandomTable(n, 9, 43);
    const FeatureBlockTable blocks(table);
    FeatureVector query(9);
    std::vector<double> weights(9);
    Rng rng(5);
    for (std::size_t d = 0; d < 9; ++d) {
      query[d] = rng.UniformDouble(-1.0, 1.0);
      weights[d] = d % 3 == 0 ? 0.0 : rng.UniformDouble(0.0, 2.0);
    }
    const WeightedL2Distance metric(weights);
    const Ranking legacy = BruteForceKnnWithMetric(table, query, 15, metric);
    const Ranking blocked =
        BruteForceWeightedKnnBlocked(blocks, query, weights, 15);
    ASSERT_EQ(legacy.size(), blocked.size()) << "n=" << n;
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(legacy[i].id, blocked[i].id) << "n=" << n;
      EXPECT_EQ(legacy[i].distance_squared, blocked[i].distance_squared)
          << "n=" << n;
    }
  }
}

TEST(BruteForceKnnBlockedTest, EmptyTableAndKZero) {
  const FeatureBlockTable empty;
  EXPECT_TRUE(BruteForceKnnBlocked(empty, FeatureVector{}, 3).empty());
  const auto table = RandomTable(5, 4, 2);
  const FeatureBlockTable blocks(table);
  EXPECT_TRUE(BruteForceKnnBlocked(blocks, FeatureVector(4), 0).empty());
}

}  // namespace
}  // namespace qdcbir
