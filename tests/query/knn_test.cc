#include "qdcbir/query/knn.h"

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> LinePoints(std::size_t n) {
  // Points at x = 0, 1, 2, ... on a line: distances are predictable.
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FeatureVector{static_cast<double>(i), 0.0});
  }
  return out;
}

TEST(BruteForceKnnTest, FindsExactNeighbors) {
  const auto table = LinePoints(10);
  const Ranking r = BruteForceKnn(table, FeatureVector{3.2, 0.0}, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 3u);
  EXPECT_EQ(r[1].id, 4u);
  EXPECT_EQ(r[2].id, 2u);
}

TEST(BruteForceKnnTest, KZeroReturnsEmpty) {
  EXPECT_TRUE(BruteForceKnn(LinePoints(5), FeatureVector{0.0, 0.0}, 0).empty());
}

TEST(BruteForceKnnTest, KLargerThanTableReturnsAll) {
  const Ranking r = BruteForceKnn(LinePoints(4), FeatureVector{0.0, 0.0}, 10);
  EXPECT_EQ(r.size(), 4u);
}

TEST(BruteForceKnnTest, ResultsSortedAscending) {
  Rng rng(3);
  std::vector<FeatureVector> table;
  for (int i = 0; i < 200; ++i) {
    table.push_back(
        FeatureVector{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)});
  }
  const Ranking r = BruteForceKnn(table, FeatureVector{0.0, 0.0}, 50);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_LE(r[i - 1].distance_squared, r[i].distance_squared);
  }
}

TEST(BruteForceKnnSubsetTest, OnlyConsidersCandidates) {
  const auto table = LinePoints(10);
  const std::vector<ImageId> candidates = {7, 8, 9};
  const Ranking r =
      BruteForceKnnSubset(table, candidates, FeatureVector{0.0, 0.0}, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].id, 7u);
  EXPECT_EQ(r[1].id, 8u);
}

TEST(BruteForceKnnSubsetTest, EmptyCandidates) {
  EXPECT_TRUE(
      BruteForceKnnSubset(LinePoints(5), {}, FeatureVector{0.0, 0.0}, 3)
          .empty());
}

TEST(BruteForceKnnWithMetricTest, WeightedMetricChangesRanking) {
  // Two points: (2, 0) and (0, 3). Plain L2 prefers the first; weighting
  // the x dimension heavily prefers the second.
  const std::vector<FeatureVector> table = {FeatureVector{2.0, 0.0},
                                            FeatureVector{0.0, 3.0}};
  const FeatureVector query{0.0, 0.0};
  L2Distance plain;
  EXPECT_EQ(BruteForceKnnWithMetric(table, query, 1, plain)[0].id, 0u);
  WeightedL2Distance weighted({100.0, 0.1});
  EXPECT_EQ(BruteForceKnnWithMetric(table, query, 1, weighted)[0].id, 1u);
}

TEST(MergeRankingsTest, DeduplicatesKeepingBestDistance) {
  const Ranking a = {{1, 4.0}, {2, 9.0}};
  const Ranking b = {{2, 1.0}, {3, 16.0}};
  const Ranking merged = MergeRankings({a, b}, 10);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 2u);  // best distance 1.0 wins
  EXPECT_DOUBLE_EQ(merged[0].distance_squared, 1.0);
  EXPECT_EQ(merged[1].id, 1u);
  EXPECT_EQ(merged[2].id, 3u);
}

TEST(MergeRankingsTest, TruncatesToK) {
  const Ranking a = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  EXPECT_EQ(MergeRankings({a}, 2).size(), 2u);
}

TEST(MergeRankingsTest, EmptyInputs) {
  EXPECT_TRUE(MergeRankings({}, 5).empty());
  EXPECT_TRUE(MergeRankings({Ranking{}, Ranking{}}, 5).empty());
}

}  // namespace
}  // namespace qdcbir
