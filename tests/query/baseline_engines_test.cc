#include <set>

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/query/mars_engine.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/query/qcluster_engine.h"
#include "qdcbir/query/qpm_engine.h"

namespace qdcbir {
namespace {

class BaselineEnginesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 30;
    catalog_ = new Catalog(Catalog::Build(catalog_options).value());
    SynthesizerOptions options;
    options.total_images = 900;
    options.image_width = 32;
    options.image_height = 32;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(*catalog_, options).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete catalog_;
  }

  /// Ids of one sub-concept, by name.
  static std::vector<ImageId> SubConceptImages(const char* name) {
    return db_->ImagesOfSubConcept(catalog_->FindSubConcept(name).value());
  }

  static const Catalog* catalog_;
  static const ImageDatabase* db_;
};

const Catalog* BaselineEnginesTest::catalog_ = nullptr;
const ImageDatabase* BaselineEnginesTest::db_ = nullptr;

TEST_F(BaselineEnginesTest, StartReturnsDisplaySizedRandomSample) {
  MvEngine engine(db_);
  const auto display = engine.Start();
  EXPECT_EQ(display.size(), 21u);
  const std::set<ImageId> unique(display.begin(), display.end());
  EXPECT_EQ(unique.size(), display.size());
}

TEST_F(BaselineEnginesTest, FinalizeWithoutFeedbackFails) {
  for (FeedbackEngine* engine :
       std::initializer_list<FeedbackEngine*>{
           new MvEngine(db_), new QpmEngine(db_), new MarsEngine(db_),
           new QclusterEngine(db_)}) {
    engine->Start();
    EXPECT_EQ(engine->Finalize(10).status().code(),
              StatusCode::kFailedPrecondition)
        << engine->Name();
    delete engine;
  }
}

TEST_F(BaselineEnginesTest, FeedbackRejectsOutOfRangeIds) {
  MvEngine engine(db_);
  engine.Start();
  EXPECT_EQ(engine.Feedback({static_cast<ImageId>(db_->size())})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BaselineEnginesTest, EmptyFeedbackKeepsBrowsing) {
  MvEngine engine(db_);
  engine.Start();
  const auto display = engine.Feedback({});
  ASSERT_TRUE(display.ok());
  EXPECT_EQ(display->size(), 21u);
}

class EngineRetrievalTest
    : public BaselineEnginesTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(EngineRetrievalTest, RelevantFeedbackImprovesRetrieval) {
  std::unique_ptr<FeedbackEngine> engine;
  const std::string name = GetParam();
  if (name == "mv") engine = std::make_unique<MvEngine>(db_);
  if (name == "qpm") engine = std::make_unique<QpmEngine>(db_);
  if (name == "mars") engine = std::make_unique<MarsEngine>(db_);
  if (name == "qcluster") engine = std::make_unique<QclusterEngine>(db_);
  ASSERT_NE(engine, nullptr);

  // Feed three eagle images as relevant; eagles should dominate the result.
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  ASSERT_GE(eagles.size(), 3u);
  engine->Start();
  ASSERT_TRUE(
      engine->Feedback({eagles[0], eagles[1], eagles[2]}).ok());
  const Ranking result = engine->Finalize(eagles.size()).value();

  const std::set<ImageId> eagle_set(eagles.begin(), eagles.end());
  std::size_t hits = 0;
  for (const KnnMatch& m : result) {
    if (eagle_set.count(m.id) > 0) ++hits;
  }
  // At least half of the retrieved set is the right sub-concept.
  EXPECT_GT(hits * 2, result.size()) << engine->Name();
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineRetrievalTest,
                         ::testing::Values("mv", "qpm", "mars", "qcluster"));

TEST_F(BaselineEnginesTest, MvCountsOneGlobalKnnPerChannelPerRound) {
  MvEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  ASSERT_TRUE(engine.Feedback({eagles[0]}).ok());
  EXPECT_EQ(engine.stats().feedback_rounds, 1u);
  EXPECT_EQ(engine.stats().global_knn_computations, 4u);  // 4 channels
  EXPECT_EQ(engine.stats().candidates_scanned, 4 * db_->size());
}

TEST_F(BaselineEnginesTest, MvSingleChannelFallsBackGracefully) {
  MvOptions options;
  options.num_channels = 1;
  MvEngine engine(db_, options);
  engine.Start();
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  ASSERT_TRUE(engine.Feedback({eagles[0]}).ok());
  EXPECT_EQ(engine.stats().global_knn_computations, 1u);
}

TEST_F(BaselineEnginesTest, MvFinalizeHasNoDuplicates) {
  MvEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  ASSERT_TRUE(engine.Feedback({eagles[0], eagles[1]}).ok());
  const Ranking result = engine.Finalize(60).value();
  std::set<ImageId> unique;
  for (const KnnMatch& m : result) {
    EXPECT_TRUE(unique.insert(m.id).second);
  }
  EXPECT_EQ(result.size(), 60u);
}

TEST_F(BaselineEnginesTest, QpmTightensMetricOnAgreeingDimensions) {
  // All relevant images share a sub-concept; QPM should put nearly all of
  // the sub-concept in the top ranks.
  QpmEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> sails = SubConceptImages("sailing");
  ASSERT_GE(sails.size(), 4u);
  ASSERT_TRUE(
      engine.Feedback({sails[0], sails[1], sails[2], sails[3]}).ok());
  const Ranking result = engine.Finalize(sails.size()).value();
  const std::set<ImageId> sail_set(sails.begin(), sails.end());
  std::size_t hits = 0;
  for (const KnnMatch& m : result) {
    if (sail_set.count(m.id) > 0) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / result.size(), 0.6);
}

TEST_F(BaselineEnginesTest, QclusterBeatsCentroidOnScatteredRelevants) {
  // Relevant images from two visually distant sub-concepts. The disjunctive
  // Qcluster engine should retrieve from both clusters at least as well as
  // query-point movement, whose centroid falls between them.
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  const std::vector<ImageId> owls = SubConceptImages("owl");
  const std::vector<ImageId> relevant = {eagles[0], eagles[1], owls[0],
                                         owls[1]};
  const std::size_t k = eagles.size() + owls.size();

  auto coverage = [&](FeedbackEngine& engine) {
    engine.Start();
    EXPECT_TRUE(engine.Feedback(relevant).ok());
    const Ranking result = engine.Finalize(k).value();
    const std::set<ImageId> eagle_set(eagles.begin(), eagles.end());
    const std::set<ImageId> owl_set(owls.begin(), owls.end());
    int covered = 0;
    bool has_eagle = false, has_owl = false;
    for (const KnnMatch& m : result) {
      if (eagle_set.count(m.id) > 0) has_eagle = true;
      if (owl_set.count(m.id) > 0) has_owl = true;
    }
    covered = (has_eagle ? 1 : 0) + (has_owl ? 1 : 0);
    return covered;
  };

  QclusterEngine qcluster(db_);
  QpmEngine qpm(db_);
  EXPECT_GE(coverage(qcluster), coverage(qpm));
  EXPECT_EQ(coverage(qcluster), 2);
}

TEST_F(BaselineEnginesTest, ResampleBeforeFeedbackIsRandom) {
  MarsEngine engine(db_);
  engine.Start();
  const auto a = engine.Resample();
  const auto b = engine.Resample();
  EXPECT_EQ(a.size(), 21u);
  EXPECT_NE(a, b);  // fresh random pages
}

TEST_F(BaselineEnginesTest, ResampleAfterFeedbackPagesThroughRanking) {
  QpmEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  const auto first = engine.Feedback({eagles[0], eagles[1]});
  ASSERT_TRUE(first.ok());
  const auto page2 = engine.Resample();
  // Pages are disjoint sections of one ranking.
  for (const ImageId id : page2) {
    EXPECT_EQ(std::find(first->begin(), first->end(), id), first->end());
  }
}

}  // namespace
}  // namespace qdcbir
