// Tests of the shared global-feedback-engine machinery (browsing, paging,
// relevant-set accumulation, state reset) through a minimal concrete
// engine.

#include <set>

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/query/feedback_engine.h"

namespace qdcbir {
namespace {

/// Minimal engine: ranks by distance to the first relevant image.
class ProbeEngine final : public GlobalFeedbackEngineBase {
 public:
  explicit ProbeEngine(const ImageDatabase* db)
      : GlobalFeedbackEngineBase(db, /*display_size=*/10, /*seed=*/5) {}

  const char* Name() const override { return "probe"; }
  StatusOr<Ranking> Finalize(std::size_t k) override {
    return ComputeRanking(k);
  }
  int compute_calls = 0;

 protected:
  StatusOr<Ranking> ComputeRanking(std::size_t k) override {
    ++compute_calls;
    if (relevant().empty()) {
      return Status::FailedPrecondition("no feedback");
    }
    return BruteForceKnn(db_->features(), db_->feature(relevant().front()),
                         k);
  }
};

class FeedbackEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 15;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 200;
    options.image_width = 16;
    options.image_height = 16;
    options.extract_viewpoint_channels = false;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());
  }
  static void TearDownTestSuite() { delete db_; }
  static const ImageDatabase* db_;
};

const ImageDatabase* FeedbackEngineTest::db_ = nullptr;

TEST_F(FeedbackEngineTest, StartProducesDistinctRandomIds) {
  ProbeEngine engine(db_);
  const auto display = engine.Start();
  EXPECT_EQ(display.size(), 10u);
  EXPECT_EQ(std::set<ImageId>(display.begin(), display.end()).size(), 10u);
  for (const ImageId id : display) EXPECT_LT(id, db_->size());
}

TEST_F(FeedbackEngineTest, ResampleBeforeFeedbackGivesFreshRandomPages) {
  ProbeEngine engine(db_);
  engine.Start();
  const auto a = engine.Resample();
  const auto b = engine.Resample();
  EXPECT_NE(a, b);
  EXPECT_EQ(engine.compute_calls, 0);  // browsing costs no ranking work
}

TEST_F(FeedbackEngineTest, FeedbackAccumulatesAcrossRounds) {
  ProbeEngine engine(db_);
  engine.Start();
  ASSERT_TRUE(engine.Feedback({1}).ok());
  ASSERT_TRUE(engine.Feedback({2, 1}).ok());  // 1 deduplicates
  EXPECT_EQ(engine.stats().feedback_rounds, 2u);
  // Ranking is anchored at the first relevant image (id 1).
  const Ranking r = engine.Finalize(1).value();
  EXPECT_EQ(r[0].id, 1u);
}

TEST_F(FeedbackEngineTest, ResampleAfterFeedbackPagesWithoutRecompute) {
  ProbeEngine engine(db_);
  engine.Start();
  ASSERT_TRUE(engine.Feedback({3}).ok());
  const int calls_after_feedback = engine.compute_calls;
  const auto page2 = engine.Resample();
  const auto page3 = engine.Resample();
  EXPECT_EQ(engine.compute_calls, calls_after_feedback);  // cached ranking
  EXPECT_FALSE(page2.empty());
  // Pages are disjoint.
  for (const ImageId id : page3) {
    EXPECT_EQ(std::find(page2.begin(), page2.end(), id), page2.end());
  }
}

TEST_F(FeedbackEngineTest, PagingWrapsAround) {
  ProbeEngine engine(db_);
  engine.Start();
  ASSERT_TRUE(engine.Feedback({3}).ok());
  // The cached ranking holds 4 pages (display_size * 4); page through all
  // of them and confirm the display never goes empty.
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(engine.Resample().empty());
  }
}

TEST_F(FeedbackEngineTest, StartResetsEverything) {
  ProbeEngine engine(db_);
  engine.Start();
  ASSERT_TRUE(engine.Feedback({5}).ok());
  EXPECT_TRUE(engine.Finalize(3).ok());
  engine.Start();
  EXPECT_EQ(engine.stats().feedback_rounds, 0u);
  EXPECT_EQ(engine.Finalize(3).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FeedbackEngineTest, EmptyFeedbackRoundsCountButDoNotRank) {
  ProbeEngine engine(db_);
  engine.Start();
  const auto display = engine.Feedback({});
  ASSERT_TRUE(display.ok());
  EXPECT_EQ(display->size(), 10u);
  EXPECT_EQ(engine.stats().feedback_rounds, 1u);
  EXPECT_EQ(engine.compute_calls, 0);
}

}  // namespace
}  // namespace qdcbir
