// Parameterized property tests of a full QD session across result sizes and
// seeds: structural invariants that must hold for every configuration.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

/// A shared tree: 12 tight clusters of 25 points; cluster c owns ids
/// [25c, 25c+25).
const RfsTree& SharedTree() {
  static const RfsTree* tree = [] {
    Rng rng(77);
    std::vector<FeatureVector> points;
    for (int c = 0; c < 12; ++c) {
      const double cx = (c % 4) * 30.0;
      const double cy = (c / 4) * 30.0;
      for (int i = 0; i < 25; ++i) {
        points.push_back(FeatureVector{cx + rng.Gaussian(0.0, 0.3),
                                       cy + rng.Gaussian(0.0, 0.3)});
      }
    }
    RfsBuildOptions options;
    options.tree.max_entries = 16;
    options.tree.min_entries = 6;
    options.representatives.fraction = 0.15;
    return new RfsTree(RfsBuilder::Build(std::move(points), options).value());
  }();
  return *tree;
}

struct SweepConfig {
  std::uint64_t seed;
  std::size_t k;
  int rounds;
};

class QdSweepTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(QdSweepTest, SessionInvariantsHoldForEveryConfiguration) {
  const SweepConfig config = GetParam();
  const RfsTree& tree = SharedTree();

  QdOptions options;
  options.seed = config.seed;
  QdSession session(&tree, options);
  Rng user_rng(config.seed * 31 + 7);

  auto display = session.Start();
  for (int round = 0; round < config.rounds; ++round) {
    // A random-ish user: marks up to 4 displayed representatives from the
    // first two clusters (ids < 50), browsing a few screens if needed.
    std::vector<ImageId> picks;
    for (int browse = 0; browse < 40 && picks.size() < 4; ++browse) {
      for (const DisplayGroup& g : display) {
        for (const ImageId id : g.images) {
          if (id < 50 && picks.size() < 4 &&
              std::find(picks.begin(), picks.end(), id) == picks.end()) {
            picks.push_back(id);
          }
        }
      }
      if (picks.size() >= 4) break;
      display = session.Resample();
    }
    auto next = session.Feedback(picks);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    display = std::move(next).value();
  }

  const StatusOr<QdResult> result = session.Finalize(config.k);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariant: exactly k results whenever the searched subtrees can supply
  // them (each cluster has 25 images; marks come from 2 clusters).
  EXPECT_LE(result->TotalImages(), config.k);
  EXPECT_GE(result->TotalImages(), std::min<std::size_t>(config.k, 25));

  // Invariant: no duplicate images across groups.
  const auto flat = result->Flatten();
  const std::set<ImageId> unique(flat.begin(), flat.end());
  EXPECT_EQ(unique.size(), flat.size());

  // Invariant: group ordering by ranking score, image ordering by distance.
  for (std::size_t g = 1; g < result->groups.size(); ++g) {
    EXPECT_LE(result->groups[g - 1].ranking_score,
              result->groups[g].ranking_score);
  }
  for (const ResultGroup& group : result->groups) {
    for (std::size_t i = 1; i < group.images.size(); ++i) {
      EXPECT_LE(group.images[i - 1].distance_squared,
                group.images[i].distance_squared);
    }
    // Every result lies inside the group's searched subtree.
    const auto members = tree.index().CollectSubtree(group.search_node);
    const std::set<ImageId> member_set(members.begin(), members.end());
    for (const KnnMatch& m : group.images) {
      EXPECT_TRUE(member_set.count(m.id) > 0);
    }
    // The ranking score equals the sum of the member distances.
    double score = 0.0;
    for (const KnnMatch& m : group.images) {
      score += std::sqrt(m.distance_squared);
    }
    EXPECT_NEAR(score, group.ranking_score, 1e-9);
  }

  // Invariant: stats are consistent with the outcome.
  EXPECT_EQ(session.stats().feedback_rounds,
            static_cast<std::size_t>(config.rounds));
  EXPECT_EQ(session.stats().localized_subqueries, result->groups.size());
  EXPECT_GE(session.stats().nodes_touched,
            session.stats().distinct_nodes_sampled);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QdSweepTest,
    ::testing::Values(SweepConfig{1, 5, 1}, SweepConfig{2, 10, 2},
                      SweepConfig{3, 25, 3}, SweepConfig{4, 40, 2},
                      SweepConfig{5, 50, 3}, SweepConfig{6, 1, 2},
                      SweepConfig{7, 13, 4}, SweepConfig{8, 33, 1}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return "seed" + std::to_string(info.param.seed) + "_k" +
             std::to_string(info.param.k) + "_r" +
             std::to_string(info.param.rounds);
    });

}  // namespace
}  // namespace qdcbir
