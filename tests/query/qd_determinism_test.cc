// The determinism contract of the parallel execution layer: every engine
// must produce byte-identical results at any thread count. Each case runs
// the same work on a sequential pool (1 lane) and a wide pool (8 lanes)
// and compares the outputs exactly — no tolerances.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "qdcbir/cache/cache_manager.h"
#include "qdcbir/obs/quality_stats.h"
#include "qdcbir/obs/wide_event.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/query/fagin_engine.h"
#include "qdcbir/query/qcluster_engine.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"
#include "qdcbir/rfs/rfs_serialization.h"

namespace qdcbir {
namespace {

class QdDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 24;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 600;
    options.image_width = 32;
    options.image_height = 32;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());

    RfsBuildOptions build;
    build.tree.max_entries = 40;
    build.tree.min_entries = 16;
    rfs_ = new RfsTree(RfsBuilder::Build(db_->features(), build).value());
  }
  static void TearDownTestSuite() {
    delete rfs_;
    delete db_;
  }

  /// Drives one scripted QD session: 2 feedback rounds marking the first
  /// two representatives of every display group, then Finalize(k).
  static QdResult RunScriptedSession(ThreadPool* pool, QdSessionStats* stats,
                                     cache::CacheManager* cache = nullptr) {
    QdOptions options;
    options.seed = 4242;
    options.pool = pool;
    options.cache = cache;
    QdSession session(rfs_, options);
    std::vector<DisplayGroup> display = session.Start();
    for (int round = 0; round < 2; ++round) {
      std::vector<ImageId> picks;
      for (const DisplayGroup& group : display) {
        for (std::size_t i = 0; i < group.images.size() && i < 2; ++i) {
          picks.push_back(group.images[i]);
        }
      }
      display = session.Feedback(picks).value();
    }
    QdResult result = session.Finalize(60).value();
    *stats = session.stats();
    return result;
  }

  static const ImageDatabase* db_;
  static const RfsTree* rfs_;
};

const ImageDatabase* QdDeterminismTest::db_ = nullptr;
const RfsTree* QdDeterminismTest::rfs_ = nullptr;

void ExpectIdenticalResults(const QdResult& a, const QdResult& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    const ResultGroup& ga = a.groups[g];
    const ResultGroup& gb = b.groups[g];
    EXPECT_EQ(ga.leaf, gb.leaf);
    EXPECT_EQ(ga.search_node, gb.search_node);
    EXPECT_EQ(ga.relevant_count, gb.relevant_count);
    EXPECT_EQ(ga.ranking_score, gb.ranking_score);  // bit-exact
    ASSERT_EQ(ga.images.size(), gb.images.size());
    for (std::size_t i = 0; i < ga.images.size(); ++i) {
      EXPECT_EQ(ga.images[i].id, gb.images[i].id);
      EXPECT_EQ(ga.images[i].distance_squared, gb.images[i].distance_squared);
    }
  }
}

TEST_F(QdDeterminismTest, QdSessionIdenticalAtOneAndEightThreads) {
  ThreadPool sequential(1);
  ThreadPool wide(8);
  QdSessionStats stats1, stats8;
  const QdResult r1 = RunScriptedSession(&sequential, &stats1);
  const QdResult r8 = RunScriptedSession(&wide, &stats8);

  ExpectIdenticalResults(r1, r8);
  // Cost counters are sums over task-local counters — also invariant.
  EXPECT_EQ(stats1.boundary_expansions, stats8.boundary_expansions);
  EXPECT_EQ(stats1.localized_subqueries, stats8.localized_subqueries);
  EXPECT_EQ(stats1.knn_candidates, stats8.knn_candidates);
  EXPECT_EQ(stats1.knn_nodes_visited, stats8.knn_nodes_visited);
}

TEST_F(QdDeterminismTest, QdSessionIdenticalWithCacheOnAndOffAcrossThreads) {
  // The cache must be invisible in the output: the scripted session run
  // through a shared CacheManager — cold on the first pass, served from
  // cache on the second — matches the uncached baseline byte-for-byte at
  // every thread count, and the logical cost counters match too (cache
  // hits replay the stat deltas of the computation they elide). The cache
  // keys embed the active SIMD level, so this holds under either
  // QDCBIR_SIMD setting; CI runs the binary under both.
  ThreadPool sequential(1);
  QdSessionStats baseline_stats;
  const QdResult baseline = RunScriptedSession(&sequential, &baseline_stats);

  cache::CacheManager cache(cache::CacheManager::Options{});
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (int pass = 0; pass < 2; ++pass) {
      QdSessionStats stats;
      const QdResult result = RunScriptedSession(&pool, &stats, &cache);
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " pass=" << pass);
      ExpectIdenticalResults(baseline, result);
      EXPECT_EQ(stats.boundary_expansions, baseline_stats.boundary_expansions);
      EXPECT_EQ(stats.localized_subqueries,
                baseline_stats.localized_subqueries);
      EXPECT_EQ(stats.knn_candidates, baseline_stats.knn_candidates);
      EXPECT_EQ(stats.knn_nodes_visited, baseline_stats.knn_nodes_visited);
    }
  }
  // The warm passes really were served from cache, not recomputed.
  EXPECT_GT(cache.TotalStats().hits, 0u);

  // Invalidation resets to cold without changing the answer.
  cache.BeginEpoch(/*snapshot_identity=*/1);
  QdSessionStats stats_after_flush;
  ExpectIdenticalResults(
      baseline, RunScriptedSession(&sequential, &stats_after_flush, &cache));
}

void ExpectIdenticalStats(const QdSessionStats& a, const QdSessionStats& b) {
  EXPECT_EQ(a.feedback_rounds, b.feedback_rounds);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.distinct_nodes_sampled, b.distinct_nodes_sampled);
  EXPECT_EQ(a.boundary_expansions, b.boundary_expansions);
  EXPECT_EQ(a.expanded_subqueries, b.expanded_subqueries);
  EXPECT_EQ(a.localized_subqueries, b.localized_subqueries);
  EXPECT_EQ(a.knn_candidates, b.knn_candidates);
  EXPECT_EQ(a.knn_nodes_visited, b.knn_nodes_visited);
}

TEST_F(QdDeterminismTest, QualityTelemetryAndWideEventsAreInvisible) {
  // The observability layer is passive by contract (obs/quality_stats.h,
  // obs/wide_event.h): a session observed by the quality tracker and
  // exported as a wide event must produce byte-identical ranked results
  // AND identical QdSessionStats to the bare baseline, at every thread
  // count.
  ThreadPool sequential(1);
  QdSessionStats baseline_stats;
  const QdResult baseline = RunScriptedSession(&sequential, &baseline_stats);

  const std::string events_path =
      ::testing::TempDir() + "determinism_wide_events.jsonl";
  std::remove(events_path.c_str());
  obs::WideEventSink sink({events_path, 1 << 20});

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);

    // Re-run the scripted session with full observation: every display and
    // the finalized ranking feed the tracker, and the summary is exported.
    QdOptions options;
    options.seed = 4242;
    options.pool = &pool;
    QdSession session(rfs_, options);
    obs::SessionQualityTracker tracker;
    auto observe = [&](const std::vector<DisplayGroup>& display) {
      std::vector<std::uint64_t> ids;
      for (const DisplayGroup& group : display) {
        for (const ImageId id : group.images) ids.push_back(id);
      }
      tracker.ObserveRound(ids, session.stats().localized_subqueries);
    };
    std::vector<DisplayGroup> display = session.Start();
    observe(display);
    for (int round = 0; round < 2; ++round) {
      std::vector<ImageId> picks;
      for (const DisplayGroup& group : display) {
        for (std::size_t i = 0; i < group.images.size() && i < 2; ++i) {
          picks.push_back(group.images[i]);
        }
      }
      display = session.Feedback(picks).value();
      observe(display);
    }
    const QdResult result = session.Finalize(60).value();
    std::vector<std::uint64_t> final_ids;
    for (const ImageId id : result.Flatten()) final_ids.push_back(id);
    tracker.ObserveRound(final_ids, session.stats().localized_subqueries);
    tracker.Finalized();

    const obs::SessionQuality quality = tracker.Summary();
    obs::PublishSessionQuality(quality);
    sink.Emit(obs::WideEventBuilder()
                  .Add("event", "session")
                  .Add("threads", static_cast<std::uint64_t>(threads))
                  .Add("outcome", obs::SessionOutcomeName(quality.outcome))
                  .Add("quality_mean_jaccard_permille",
                       quality.mean_jaccard_permille)
                  .Build());

    ExpectIdenticalResults(baseline, result);
    ExpectIdenticalStats(baseline_stats, session.stats());
    EXPECT_EQ(quality.outcome, obs::SessionOutcome::kFinalized);
    EXPECT_GE(quality.rounds_observed, 4u);
  }
  EXPECT_EQ(sink.emitted(), 4u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST_F(QdDeterminismTest, QclusterIdenticalWithCacheOnAndOff) {
  ThreadPool pool(4);
  cache::CacheManager cache(cache::CacheManager::Options{});
  auto run = [&](cache::CacheManager* cache_ptr) {
    QclusterOptions options;
    options.seed = 9;
    options.pool = &pool;
    options.cache = cache_ptr;
    QclusterEngine engine(db_, options);
    engine.Start();
    engine.Feedback({10, 11, 250, 251, 500, 501}).value();
    return engine.Finalize(64).value();
  };
  const Ranking uncached = run(nullptr);
  const Ranking cold = run(&cache);
  const Ranking warm = run(&cache);  // served from the top-k cache
  EXPECT_GT(cache.TotalStats().hits, 0u);
  for (const Ranking* ranking : {&cold, &warm}) {
    ASSERT_EQ(uncached.size(), ranking->size());
    for (std::size_t i = 0; i < uncached.size(); ++i) {
      EXPECT_EQ(uncached[i].id, (*ranking)[i].id);
      EXPECT_EQ(uncached[i].distance_squared, (*ranking)[i].distance_squared);
    }
  }
}

TEST_F(QdDeterminismTest, WeightedQdSessionIdenticalAcrossThreadCounts) {
  ThreadPool sequential(1);
  ThreadPool wide(8);
  auto run = [&](ThreadPool* pool) {
    QdOptions options;
    options.seed = 77;
    options.pool = pool;
    options.feature_weights = MakeGroupWeights(2.0, 1.0, 0.5);
    QdSession session(rfs_, options);
    std::vector<DisplayGroup> display = session.Start();
    std::vector<ImageId> picks;
    for (const DisplayGroup& group : display) {
      if (!group.images.empty()) picks.push_back(group.images.front());
    }
    display = session.Feedback(picks).value();
    return session.Finalize(40).value();
  };
  ExpectIdenticalResults(run(&sequential), run(&wide));
}

TEST_F(QdDeterminismTest, RfsBuildIsByteIdenticalAcrossThreadCounts) {
  ThreadPool sequential(1);
  ThreadPool wide(8);
  RfsBuildOptions build;
  build.tree.max_entries = 40;
  build.tree.min_entries = 16;

  build.pool = &sequential;
  const RfsTree tree1 = RfsBuilder::Build(db_->features(), build).value();
  build.pool = &wide;
  const RfsTree tree8 = RfsBuilder::Build(db_->features(), build).value();

  EXPECT_EQ(RfsSerializer::Serialize(tree1), RfsSerializer::Serialize(tree8));
}

TEST_F(QdDeterminismTest, FaginRankingIdenticalAcrossThreadCounts) {
  ThreadPool sequential(1);
  ThreadPool wide(8);
  auto run = [&](ThreadPool* pool) {
    FaginOptions options;
    options.seed = 5;
    options.pool = pool;
    FaginEngine engine(db_, options);
    engine.Start();
    engine.Feedback({3, 59, 204, 477}).value();
    return engine.Finalize(50).value();
  };
  const Ranking r1 = run(&sequential);
  const Ranking r8 = run(&wide);
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].id, r8[i].id);
    EXPECT_EQ(r1[i].distance_squared, r8[i].distance_squared);
  }
}

TEST_F(QdDeterminismTest, QclusterRankingIdenticalAcrossThreadCounts) {
  ThreadPool sequential(1);
  ThreadPool wide(8);
  auto run = [&](ThreadPool* pool) {
    QclusterOptions options;
    options.seed = 9;
    options.pool = pool;
    QclusterEngine engine(db_, options);
    engine.Start();
    engine.Feedback({10, 11, 250, 251, 500, 501}).value();
    return engine.Finalize(64).value();
  };
  const Ranking r1 = run(&sequential);
  const Ranking r8 = run(&wide);
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].id, r8[i].id);
    EXPECT_EQ(r1[i].distance_squared, r8[i].distance_squared);
  }
}

}  // namespace
}  // namespace qdcbir
