#include "qdcbir/query/fagin_engine.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"

namespace qdcbir {
namespace {

class FaginEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 25;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 700;
    options.image_width = 28;
    options.image_height = 28;
    options.extract_viewpoint_channels = false;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());
  }
  static void TearDownTestSuite() { delete db_; }

  static std::vector<ImageId> SubConceptImages(const char* name) {
    return db_->ImagesOfSubConcept(
        db_->catalog().FindSubConcept(name).value());
  }

  static const ImageDatabase* db_;
};

const ImageDatabase* FaginEngineTest::db_ = nullptr;

/// Brute-force aggregate ranking matching the engine's score definition.
std::vector<ImageId> BruteAggregateTopK(const ImageDatabase& db,
                                        const FeatureVector& centroid,
                                        std::size_t k) {
  struct Scored {
    ImageId id;
    double score;
  };
  std::vector<Scored> all;
  const FeatureLayout layout = kPaperLayout;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const FeatureVector& x = db.feature(i);
    auto group = [&](std::size_t b, std::size_t e) {
      double s = 0.0;
      for (std::size_t d = b; d < e; ++d) {
        s += (x[d] - centroid[d]) * (x[d] - centroid[d]);
      }
      return std::sqrt(s);
    };
    all.push_back(
        Scored{static_cast<ImageId>(i),
               group(layout.color_begin, layout.color_end) +
                   group(layout.texture_begin, layout.texture_end) +
                   group(layout.edge_begin, layout.edge_end)});
  }
  std::sort(all.begin(), all.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id < b.id;
  });
  std::vector<ImageId> ids;
  for (std::size_t i = 0; i < k && i < all.size(); ++i) {
    ids.push_back(all[i].id);
  }
  return ids;
}

TEST_F(FaginEngineTest, FinalizeWithoutFeedbackFails) {
  FaginEngine engine(db_);
  engine.Start();
  EXPECT_EQ(engine.Finalize(10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FaginEngineTest, ThresholdAlgorithmMatchesBruteForceAggregate) {
  FaginEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  ASSERT_GE(eagles.size(), 2u);
  ASSERT_TRUE(engine.Feedback({eagles[0], eagles[1]}).ok());
  const Ranking result = engine.Finalize(20).value();

  FeatureVector centroid(db_->feature_dim());
  centroid += db_->feature(eagles[0]);
  centroid += db_->feature(eagles[1]);
  centroid *= 0.5;
  const std::vector<ImageId> expected =
      BruteAggregateTopK(*db_, centroid, 20);

  ASSERT_EQ(result.size(), expected.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].id, expected[i]) << "rank " << i;
  }
}

TEST_F(FaginEngineTest, EarlyTerminationBeatsFullAccessCount) {
  FaginEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> roses = SubConceptImages("red_rose");
  ASSERT_TRUE(engine.Feedback({roses[0], roses[1]}).ok());
  engine.Finalize(10).value();
  // TA must stop before performing the worst-case 3 sorted + 2 random
  // accesses for every object in the database.
  EXPECT_LT(engine.last_ta_accesses(), 5 * db_->size());
  EXPECT_GT(engine.last_ta_accesses(), 0u);
}

TEST_F(FaginEngineTest, RetrievesTheRelevantSubconcept) {
  FaginEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> sails = SubConceptImages("sailing");
  ASSERT_GE(sails.size(), 3u);
  ASSERT_TRUE(engine.Feedback({sails[0], sails[1], sails[2]}).ok());
  const Ranking result = engine.Finalize(sails.size()).value();
  const std::set<ImageId> sail_set(sails.begin(), sails.end());
  std::size_t hits = 0;
  for (const KnnMatch& m : result) {
    if (sail_set.count(m.id) > 0) ++hits;
  }
  EXPECT_GT(hits * 2, result.size());
}

TEST_F(FaginEngineTest, ResultsSortedAndDistinct) {
  FaginEngine engine(db_);
  engine.Start();
  const std::vector<ImageId> eagles = SubConceptImages("eagle");
  ASSERT_TRUE(engine.Feedback({eagles[0]}).ok());
  const Ranking result = engine.Finalize(50).value();
  EXPECT_EQ(result.size(), 50u);
  std::set<ImageId> seen;
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_TRUE(seen.insert(result[i].id).second);
    if (i > 0) {
      EXPECT_LE(result[i - 1].distance_squared, result[i].distance_squared);
    }
  }
}

}  // namespace
}  // namespace qdcbir
