#include "qdcbir/query/multipoint.h"

#include <cmath>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(MultipointQueryTest, CentroidOfEqualWeights) {
  const MultipointQuery q({FeatureVector{0.0, 0.0}, FeatureVector{4.0, 2.0}});
  EXPECT_EQ(q.Centroid(), (FeatureVector{2.0, 1.0}));
  EXPECT_EQ(q.size(), 2u);
}

TEST(MultipointQueryTest, WeightedCentroid) {
  const MultipointQuery q({FeatureVector{0.0}, FeatureVector{10.0}},
                          {3.0, 1.0});
  EXPECT_DOUBLE_EQ(q.Centroid()[0], 2.5);
}

TEST(MultipointQueryTest, CentroidScoreIsSquaredDistanceToCentroid) {
  const MultipointQuery q({FeatureVector{0.0, 0.0}, FeatureVector{2.0, 0.0}});
  // Centroid is (1, 0).
  EXPECT_DOUBLE_EQ(q.CentroidScore(FeatureVector{1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(q.CentroidScore(FeatureVector{4.0, 4.0}), 9.0 + 16.0);
}

TEST(MultipointQueryTest, AggregateScoreIsWeightedMeanOfDistances) {
  const MultipointQuery q({FeatureVector{0.0}, FeatureVector{10.0}},
                          {1.0, 1.0});
  // Point 4: distances 4 and 6 -> mean 5.
  EXPECT_DOUBLE_EQ(q.AggregateScore(FeatureVector{4.0}), 5.0);
}

TEST(MultipointQueryTest, AggregateScoreRespectsWeights) {
  const MultipointQuery q({FeatureVector{0.0}, FeatureVector{10.0}},
                          {9.0, 1.0});
  // Point 10 is far from the heavy representative.
  EXPECT_GT(q.AggregateScore(FeatureVector{10.0}),
            q.AggregateScore(FeatureVector{0.0}));
}

TEST(MultipointQueryTest, DisjunctiveScoreUsesNearestPoint) {
  const MultipointQuery q({FeatureVector{0.0}, FeatureVector{100.0}});
  // Near the second contour: distance to the nearest point only.
  EXPECT_DOUBLE_EQ(q.DisjunctiveScore(FeatureVector{99.0}), 1.0);
  EXPECT_DOUBLE_EQ(q.DisjunctiveScore(FeatureVector{1.0}), 1.0);
  // The midpoint is equally far from both -> large disjunctive score.
  EXPECT_DOUBLE_EQ(q.DisjunctiveScore(FeatureVector{50.0}), 2500.0);
}

TEST(MultipointQueryTest, DisjunctiveVersusCentroidOnScatteredClusters) {
  // The key geometric fact behind Qcluster and QD: for two distant relevant
  // clusters, the centroid lies in no-man's land. A point inside a cluster
  // scores better disjunctively than the midpoint does; under the centroid
  // score the midpoint (wrongly) wins.
  const MultipointQuery q({FeatureVector{0.0}, FeatureVector{100.0}});
  const FeatureVector in_cluster{2.0};
  const FeatureVector no_mans_land{50.0};
  EXPECT_LT(q.DisjunctiveScore(in_cluster), q.DisjunctiveScore(no_mans_land));
  EXPECT_GT(q.CentroidScore(in_cluster), q.CentroidScore(no_mans_land));
}

TEST(MultipointQueryTest, EmptyQueryReportsEmpty) {
  const MultipointQuery q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(MultipointQueryTest, SinglePointAllScoresAgree) {
  const MultipointQuery q({FeatureVector{3.0, 4.0}});
  const FeatureVector x{0.0, 0.0};
  EXPECT_DOUBLE_EQ(q.CentroidScore(x), 25.0);
  EXPECT_DOUBLE_EQ(q.DisjunctiveScore(x), 25.0);
  EXPECT_DOUBLE_EQ(q.AggregateScore(x), 5.0);  // plain distance
}

}  // namespace
}  // namespace qdcbir
