#include "qdcbir/cluster/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"

namespace qdcbir {
namespace {

/// Three well-separated 2-D blobs of `per_blob` points each.
std::vector<FeatureVector> ThreeBlobs(std::size_t per_blob,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      out.push_back(FeatureVector{c[0] + rng.Gaussian(0.0, 0.3),
                                  c[1] + rng.Gaussian(0.0, 0.3)});
    }
  }
  return out;
}

TEST(KMeansTest, RejectsInvalidInputs) {
  KMeansOptions options;
  EXPECT_FALSE(RunKMeans({}, options).ok());
  options.k = 0;
  EXPECT_FALSE(RunKMeans({FeatureVector{1.0}}, options).ok());
  options.k = 2;
  EXPECT_FALSE(
      RunKMeans({FeatureVector{1.0}, FeatureVector{1.0, 2.0}}, options).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  const auto points = ThreeBlobs(30, 3);
  KMeansOptions options;
  options.k = 3;
  options.seed = 5;
  const KMeansResult result = RunKMeans(points, options).value();

  ASSERT_EQ(result.centroids.size(), 3u);
  // Every blob's points share one label, and labels differ across blobs.
  std::set<int> blob_labels;
  for (int blob = 0; blob < 3; ++blob) {
    const int label = result.assignments[blob * 30];
    blob_labels.insert(label);
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(result.assignments[blob * 30 + i], label);
    }
  }
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeansTest, CentroidsNearTrueCenters) {
  const auto points = ThreeBlobs(50, 7);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = RunKMeans(points, options).value();
  const std::vector<FeatureVector> expected = {FeatureVector{0.0, 0.0},
                                               FeatureVector{10.0, 0.0},
                                               FeatureVector{0.0, 10.0}};
  for (const FeatureVector& e : expected) {
    double best = 1e18;
    for (const FeatureVector& c : result.centroids) {
      best = std::min(best, SquaredL2(e, c));
    }
    EXPECT_LT(best, 0.1);
  }
}

TEST(KMeansTest, ClusterSizesSumToPointCount) {
  const auto points = ThreeBlobs(20, 11);
  KMeansOptions options;
  options.k = 4;
  const KMeansResult result = RunKMeans(points, options).value();
  std::size_t total = 0;
  for (const std::size_t s : result.cluster_sizes) total += s;
  EXPECT_EQ(total, points.size());
}

TEST(KMeansTest, KClampedToPointCount) {
  const std::vector<FeatureVector> points = {FeatureVector{0.0},
                                             FeatureVector{5.0}};
  KMeansOptions options;
  options.k = 10;
  const KMeansResult result = RunKMeans(points, options).value();
  EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  const auto points = ThreeBlobs(25, 13);
  KMeansOptions options;
  options.k = 3;
  options.seed = 77;
  const KMeansResult a = RunKMeans(points, options).value();
  const KMeansResult b = RunKMeans(points, options).value();
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  const auto points = ThreeBlobs(20, 17);
  KMeansOptions one;
  one.k = 3;
  one.n_init = 1;
  one.seed = 3;
  KMeansOptions many = one;
  many.n_init = 5;
  EXPECT_LE(RunKMeans(points, many).value().inertia,
            RunKMeans(points, one).value().inertia + 1e-9);
}

TEST(KMeansTest, IdenticalPointsYieldZeroInertia) {
  const std::vector<FeatureVector> points(10, FeatureVector{2.0, 2.0});
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = RunKMeans(points, options).value();
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, InertiaIsSumOfSquaredDistances) {
  const auto points = ThreeBlobs(10, 19);
  KMeansOptions options;
  options.k = 2;
  const KMeansResult result = RunKMeans(points, options).value();
  double manual = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    manual += SquaredL2(points[i], result.centroids[result.assignments[i]]);
  }
  EXPECT_NEAR(result.inertia, manual, 1e-9);
}

TEST(NearestPointIndexTest, FindsNearest) {
  const std::vector<FeatureVector> points = {
      FeatureVector{0.0, 0.0}, FeatureVector{5.0, 5.0},
      FeatureVector{10.0, 0.0}};
  EXPECT_EQ(NearestPointIndex(points, FeatureVector{4.4, 4.9}), 1u);
  EXPECT_EQ(NearestPointIndex(points, FeatureVector{9.0, 1.0}), 2u);
}

}  // namespace
}  // namespace qdcbir
