#include "qdcbir/cluster/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

TEST(JacobiTest, DiagonalMatrixEigenvalues) {
  // diag(3, 1, 2) -> eigenvalues sorted descending: 3, 2, 1.
  std::vector<double> m = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  JacobiEigenSymmetric(m, 3, values, vectors);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 2.0, 1e-10);
  EXPECT_NEAR(values[2], 1.0, 1e-10);
}

TEST(JacobiTest, KnownSymmetricMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  std::vector<double> m = {2, 1, 1, 2};
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  JacobiEigenSymmetric(m, 2, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::fabs(vectors[0][1]), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  Rng rng(3);
  const std::size_t n = 6;
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m[i * n + j] = m[j * n + i] = rng.UniformDouble(-1.0, 1.0);
    }
  }
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  JacobiEigenSymmetric(m, n, values, vectors);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += vectors[a][i] * vectors[b][i];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

std::vector<FeatureVector> AnisotropicCloud(std::size_t n,
                                            std::uint64_t seed) {
  // Points spread mostly along the (1, 1, 0) direction in 3-D.
  Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.Gaussian(0.0, 5.0);
    out.push_back(FeatureVector{t + rng.Gaussian(0.0, 0.2),
                                t + rng.Gaussian(0.0, 0.2),
                                rng.Gaussian(0.0, 0.2)});
  }
  return out;
}

TEST(PcaTest, RejectsBadInputs) {
  Pca pca;
  EXPECT_FALSE(pca.Fit({}, 1).ok());
  EXPECT_FALSE(pca.Fit({FeatureVector{1.0}}, 1).ok());
  EXPECT_FALSE(
      pca.Fit({FeatureVector{1.0, 2.0}, FeatureVector{3.0, 4.0}}, 0).ok());
  EXPECT_FALSE(
      pca.Fit({FeatureVector{1.0, 2.0}, FeatureVector{3.0, 4.0}}, 5).ok());
}

TEST(PcaTest, FirstComponentCapturesDominantDirection) {
  Pca pca;
  ASSERT_TRUE(pca.Fit(AnisotropicCloud(400, 5), 1).ok());
  const FeatureVector& axis = pca.components()[0];
  // The dominant axis is (1,1,0)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(axis[0]), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(std::fabs(axis[1]), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(axis[2], 0.0, 0.05);
  EXPECT_GT(pca.explained_variance_ratio(), 0.95);
}

TEST(PcaTest, TransformReducesDimension) {
  Pca pca;
  const auto cloud = AnisotropicCloud(200, 7);
  ASSERT_TRUE(pca.Fit(cloud, 2).ok());
  const FeatureVector projected = pca.Transform(cloud[0]).value();
  EXPECT_EQ(projected.dim(), 2u);
}

TEST(PcaTest, TransformBatchMatchesSingle) {
  Pca pca;
  const auto cloud = AnisotropicCloud(100, 9);
  ASSERT_TRUE(pca.Fit(cloud, 2).ok());
  const auto batch = pca.TransformBatch(cloud).value();
  for (std::size_t i = 0; i < 5; ++i) {
    const FeatureVector single = pca.Transform(cloud[i]).value();
    EXPECT_EQ(batch[i], single);
  }
}

TEST(PcaTest, ExplainedVarianceDecreasing) {
  Pca pca;
  ASSERT_TRUE(pca.Fit(AnisotropicCloud(300, 11), 3).ok());
  const auto& ev = pca.explained_variance();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_GE(ev[0], ev[1]);
  EXPECT_GE(ev[1], ev[2]);
}

TEST(PcaTest, TransformRejectsWrongDim) {
  Pca pca;
  ASSERT_TRUE(pca.Fit(AnisotropicCloud(50, 13), 2).ok());
  EXPECT_FALSE(pca.Transform(FeatureVector{1.0}).ok());
}

TEST(PcaTest, ProjectionPreservesPairwiseStructure) {
  // Distances along the dominant direction survive projection.
  Pca pca;
  const auto cloud = AnisotropicCloud(200, 15);
  ASSERT_TRUE(pca.Fit(cloud, 1).ok());
  const FeatureVector far_a{-20.0, -20.0, 0.0};
  const FeatureVector far_b{20.0, 20.0, 0.0};
  const double pa = pca.Transform(far_a).value()[0];
  const double pb = pca.Transform(far_b).value()[0];
  EXPECT_GT(std::fabs(pa - pb), 30.0);
}

}  // namespace
}  // namespace qdcbir
