#include "qdcbir/cluster/cluster_stats.h"

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

struct LabeledData {
  std::vector<FeatureVector> points;
  std::vector<int> labels;
};

LabeledData Blobs(double spread, double distance, std::uint64_t seed) {
  Rng rng(seed);
  LabeledData data;
  const double centers[3][2] = {
      {0.0, 0.0}, {distance, 0.0}, {0.0, distance}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 25; ++i) {
      data.points.push_back(
          FeatureVector{centers[b][0] + rng.Gaussian(0.0, spread),
                        centers[b][1] + rng.Gaussian(0.0, spread)});
      data.labels.push_back(b);
    }
  }
  return data;
}

TEST(SeparationTest, WellSeparatedBlobsScoreHigh) {
  const LabeledData data = Blobs(0.2, 10.0, 3);
  const ClusterSeparationStats stats =
      ComputeSeparation(data.points, data.labels);
  EXPECT_EQ(stats.num_clusters, 3u);
  EXPECT_GT(stats.separation_ratio, 2.0);
  EXPECT_NEAR(stats.min_inter_centroid_dist, 10.0, 1.0);
}

TEST(SeparationTest, OverlappingBlobsScoreLow) {
  const LabeledData data = Blobs(3.0, 1.0, 5);
  const ClusterSeparationStats stats =
      ComputeSeparation(data.points, data.labels);
  EXPECT_LT(stats.separation_ratio, 1.0);
}

TEST(SeparationTest, HandlesDegenerateInputs) {
  EXPECT_EQ(ComputeSeparation({}, {}).num_clusters, 0u);
  // Mismatched sizes.
  EXPECT_EQ(ComputeSeparation({FeatureVector{1.0}}, {0, 1}).num_clusters, 0u);
  // Single cluster: no inter-centroid distances.
  const ClusterSeparationStats stats = ComputeSeparation(
      {FeatureVector{0.0}, FeatureVector{1.0}}, {0, 0});
  EXPECT_EQ(stats.num_clusters, 1u);
  EXPECT_EQ(stats.min_inter_centroid_dist, 0.0);
}

TEST(SeparationTest, NegativeLabelsAreSkipped) {
  const ClusterSeparationStats stats = ComputeSeparation(
      {FeatureVector{0.0}, FeatureVector{1.0}, FeatureVector{5.0}},
      {0, -1, 1});
  EXPECT_EQ(stats.num_clusters, 2u);
}

TEST(SilhouetteTest, SeparatedBeatsOverlapping) {
  const LabeledData good = Blobs(0.2, 10.0, 7);
  const LabeledData bad = Blobs(3.0, 1.0, 9);
  const double s_good = MeanSilhouette(good.points, good.labels);
  const double s_bad = MeanSilhouette(bad.points, bad.labels);
  EXPECT_GT(s_good, 0.8);
  EXPECT_LT(s_bad, 0.3);
  EXPECT_GT(s_good, s_bad);
}

TEST(SilhouetteTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(MeanSilhouette({}, {}), 0.0);
  EXPECT_EQ(MeanSilhouette({FeatureVector{1.0}}, {0}), 0.0);
  // One cluster only.
  EXPECT_EQ(
      MeanSilhouette({FeatureVector{0.0}, FeatureVector{1.0}}, {0, 0}), 0.0);
}

TEST(DaviesBouldinTest, SeparatedScoresLower) {
  const LabeledData good = Blobs(0.2, 10.0, 11);
  const LabeledData bad = Blobs(3.0, 1.0, 13);
  const double db_good = DaviesBouldinIndex(good.points, good.labels);
  const double db_bad = DaviesBouldinIndex(bad.points, bad.labels);
  EXPECT_LT(db_good, db_bad);
  EXPECT_LT(db_good, 0.2);
}

TEST(DaviesBouldinTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(DaviesBouldinIndex({}, {}), 0.0);
  EXPECT_EQ(
      DaviesBouldinIndex({FeatureVector{0.0}, FeatureVector{1.0}}, {0, 0}),
      0.0);
}

}  // namespace
}  // namespace qdcbir
