/// Concurrency stress for CacheManager, written to run under TSan (the CI
/// sanitizer matrix picks it up via the `cache_` name prefix). The
/// invariants under contention:
///
///   * the budget is a hard ceiling — `bytes_highwater()` never exceeds it,
///     even while many threads insert under eviction pressure;
///   * a payload handed back by Lookup stays valid after a concurrent
///     eviction removes its entry (immutability via shared_ptr);
///   * after `BeginEpoch`, no value computed against the old snapshot is
///     ever returned — including the compute-then-insert race where the
///     insert lands after the flush.

#include "qdcbir/cache/cache_manager.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace qdcbir {
namespace cache {
namespace {

CacheKey Key(std::uint64_t a, CacheKind kind = CacheKind::kLeafScan) {
  CacheKey key;
  key.kind = kind;
  key.a = a;
  return key;
}

TEST(CacheConcurrencyTest, BudgetHoldsUnderMixedLoad) {
  CacheManager::Options options;
  options.shard_count = 8;
  // Small enough that ~every insert needs an eviction: maximum pressure.
  options.budget_bytes = 64 * (128 + CacheManager::kEntryOverheadBytes);
  CacheManager cache(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<std::uint64_t> total_hits{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &total_hits, t] {
      std::uint64_t hits = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Overlapping key ranges across threads: contended shards, real
        // hit/evict races, not thread-private traffic.
        const std::uint64_t id =
            static_cast<std::uint64_t>((t * kOpsPerThread + i) % 512);
        std::uint64_t epoch = 0;
        auto value = cache.LookupAs<std::string>(Key(id), &epoch);
        if (value != nullptr) {
          // The payload must stay readable even if another thread evicts
          // this entry right now.
          ASSERT_EQ(value->size(), 128u);
          ASSERT_EQ((*value)[0], 'v');
          ++hits;
        } else {
          cache.InsertAs<std::string>(
              Key(id), std::make_shared<const std::string>(128, 'v'), 128,
              epoch);
        }
      }
      total_hits.fetch_add(hits, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_LE(cache.bytes_highwater(), options.budget_bytes);
  EXPECT_LE(cache.bytes_used(), options.budget_bytes);
  EXPECT_GT(cache.TotalStats().evictions, 0u);
  EXPECT_GT(total_hits.load(), 0u);

  // Live byte/entry accounting survived the churn: re-derive it.
  const CacheStats stats = cache.TotalStats();
  EXPECT_EQ(stats.bytes_used,
            stats.entries * (128 + CacheManager::kEntryOverheadBytes));
}

TEST(CacheConcurrencyTest, NoStaleValueAfterInvalidation) {
  CacheManager::Options options;
  options.shard_count = 4;
  CacheManager cache(options);

  // Phase tag encoded in the payload, derived from the epoch token the
  // Lookup handed out: tokens equal to the starting epoch tag "old",
  // anything later tags "new". Writers simulate compute-then-insert; if the
  // epoch check has a hole, an "old" payload survives the flush and a
  // reader whose lookup *started after* the flush sees it.
  const std::uint64_t pre_epoch = cache.epoch();
  std::atomic<bool> flushed{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&cache, &flushed, &stop, pre_epoch, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t id = (t * 131 + i++) % 256;
        // Ordering matters: observing flushed==true here means BeginEpoch
        // finished before the lookup below started, so an "old" hit would
        // be a genuine stale read.
        const bool after = flushed.load(std::memory_order_acquire);
        std::uint64_t epoch = 0;
        auto value = cache.LookupAs<std::string>(Key(id), &epoch);
        if (value != nullptr) {
          if (after) {
            ASSERT_EQ(*value, "new") << "stale entry served after flush";
          }
          continue;
        }
        // The "computation" — insert with the token from the miss. A
        // pre-flush token makes an "old" payload, which the manager must
        // either clear (inserted before the flush) or reject (after).
        cache.InsertAs<std::string>(
            Key(id),
            std::make_shared<const std::string>(epoch == pre_epoch ? "old"
                                                                   : "new"),
            8, epoch);
      }
    });
  }

  // Let the workers populate, then invalidate. Order matters: BeginEpoch
  // first (kills outstanding "old" tokens), then the flag writers use to
  // tag fresh payloads "new".
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cache.BeginEpoch(/*snapshot_identity=*/42);
  flushed.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(cache.snapshot_identity(), 42u);
  EXPECT_EQ(cache.TotalStats().flushes, 1u);
}

TEST(CacheConcurrencyTest, InvalidationRacesInsertAndLookup) {
  // Hammer BeginEpoch itself: one thread flushes in a loop while others
  // insert and read. Checks internal consistency (accounting, no deadlock,
  // no torn entries) rather than a phase property.
  CacheManager::Options options;
  options.shard_count = 4;
  options.budget_bytes = 32 * (64 + CacheManager::kEntryOverheadBytes);
  CacheManager cache(options);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t id = (t * 97 + i++) % 128;
        std::uint64_t epoch = 0;
        auto value = cache.LookupAs<std::string>(Key(id), &epoch);
        if (value == nullptr) {
          cache.InsertAs<std::string>(
              Key(id), std::make_shared<const std::string>(64, 'y'), 64,
              epoch);
        } else {
          ASSERT_EQ(value->size(), 64u);
        }
      }
    });
  }
  std::thread flusher([&cache, &stop] {
    std::uint64_t generation = 0;
    while (!stop.load(std::memory_order_acquire)) {
      cache.BeginEpoch(++generation);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  flusher.join();

  EXPECT_LE(cache.bytes_highwater(), options.budget_bytes);
  const CacheStats stats = cache.TotalStats();
  EXPECT_EQ(stats.bytes_used,
            stats.entries * (64 + CacheManager::kEntryOverheadBytes));
  EXPECT_GT(stats.flushes, 0u);
}

}  // namespace
}  // namespace cache
}  // namespace qdcbir
