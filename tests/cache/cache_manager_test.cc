#include "qdcbir/cache/cache_manager.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace cache {
namespace {

CacheKey Key(std::uint64_t a, CacheKind kind = CacheKind::kLeafScan) {
  CacheKey key;
  key.kind = kind;
  key.a = a;
  return key;
}

std::shared_ptr<const std::string> Payload(std::size_t size) {
  return std::make_shared<const std::string>(size, 'x');
}

/// Inserts a `size`-byte payload under `a`; expects success.
void MustInsert(CacheManager* cache, std::uint64_t a, std::size_t size,
                CacheKind kind = CacheKind::kLeafScan) {
  std::uint64_t epoch = 0;
  ASSERT_EQ(cache->LookupAs<std::string>(Key(a, kind), &epoch), nullptr);
  ASSERT_TRUE(cache->InsertAs<std::string>(Key(a, kind), Payload(size), size,
                                           epoch));
}

bool Contains(CacheManager* cache, std::uint64_t a,
              CacheKind kind = CacheKind::kLeafScan) {
  std::uint64_t epoch = 0;
  return cache->LookupAs<std::string>(Key(a, kind), &epoch) != nullptr;
}

TEST(CacheManagerTest, HitReturnsInsertedValue) {
  CacheManager::Options options;
  options.shard_count = 4;
  CacheManager cache(options);

  std::uint64_t epoch = 0;
  EXPECT_EQ(cache.LookupAs<std::string>(Key(7), &epoch), nullptr);
  auto value = std::make_shared<const std::string>("ranking-bytes");
  ASSERT_TRUE(cache.InsertAs<std::string>(Key(7), value, value->size(), epoch));

  std::uint64_t unused = 0;
  auto hit = cache.LookupAs<std::string>(Key(7), &unused);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "ranking-bytes");
  // Same payload object, not a copy: values are immutable and shared.
  EXPECT_EQ(hit.get(), value.get());

  const CacheStats stats = cache.TotalStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CacheManagerTest, KeysDifferingInAnyWordOrKindAreDistinct) {
  CacheManager cache(CacheManager::Options{});
  CacheKey base = Key(1);
  base.b = 2;
  base.c = 3;
  std::uint64_t epoch = 0;
  cache.LookupAs<std::string>(base, &epoch);
  ASSERT_TRUE(cache.InsertAs<std::string>(base, Payload(8), 8, epoch));

  for (CacheKey probe :
       {Key(2), [&] { CacheKey k = base; k.b = 9; return k; }(),
        [&] { CacheKey k = base; k.c = 9; return k; }(),
        [&] { CacheKey k = base; k.kind = CacheKind::kTopK; return k; }()}) {
    std::uint64_t unused = 0;
    EXPECT_EQ(cache.LookupAs<std::string>(probe, &unused), nullptr);
  }
  std::uint64_t unused = 0;
  EXPECT_NE(cache.LookupAs<std::string>(base, &unused), nullptr);
}

TEST(CacheManagerTest, ByteAccountingIsExactIncludingOverhead) {
  CacheManager::Options options;
  options.budget_bytes = 1 << 20;
  options.shard_count = 1;
  CacheManager cache(options);

  const std::size_t sizes[] = {0, 1, 100, 4096};
  std::uint64_t expected = 0;
  std::uint64_t id = 0;
  for (std::size_t size : sizes) {
    MustInsert(&cache, ++id, size);
    expected += size + CacheManager::kEntryOverheadBytes;
    EXPECT_EQ(cache.bytes_used(), expected);
  }
  EXPECT_EQ(cache.bytes_highwater(), expected);
  EXPECT_EQ(cache.TotalStats().entries, 4u);

  // BeginEpoch drops everything and returns the bytes — exactly.
  cache.BeginEpoch(/*snapshot_identity=*/123);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.TotalStats().entries, 0u);
  EXPECT_EQ(cache.bytes_highwater(), expected);  // highwater is monotonic
  EXPECT_EQ(cache.TotalStats().flushes, 1u);
  EXPECT_EQ(cache.snapshot_identity(), 123u);
}

TEST(CacheManagerTest, EvictionReleasesExactBytesOfVictim) {
  CacheManager::Options options;
  options.shard_count = 1;
  // Room for exactly two 100-byte entries plus overhead, not three.
  options.budget_bytes = 2 * (100 + CacheManager::kEntryOverheadBytes);
  CacheManager cache(options);

  MustInsert(&cache, 1, 100);
  MustInsert(&cache, 2, 100);
  EXPECT_EQ(cache.bytes_used(), options.budget_bytes);

  // Third insert must evict exactly one victim: bytes stay at the budget.
  MustInsert(&cache, 3, 100);
  EXPECT_EQ(cache.bytes_used(), options.budget_bytes);
  EXPECT_EQ(cache.bytes_highwater(), options.budget_bytes);
  const CacheStats stats = cache.TotalStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(CacheManagerTest, VictimIsLowestFrequencyThenOldest) {
  CacheManager::Options options;
  options.shard_count = 1;  // one shard: eviction order is fully observable
  options.budget_bytes = 3 * (64 + CacheManager::kEntryOverheadBytes);
  CacheManager cache(options);

  MustInsert(&cache, 1, 64);
  MustInsert(&cache, 2, 64);
  MustInsert(&cache, 3, 64);

  // Touch 1 twice and 3 once; 2 stays at frequency zero.
  ASSERT_TRUE(Contains(&cache, 1));
  ASSERT_TRUE(Contains(&cache, 1));
  ASSERT_TRUE(Contains(&cache, 3));

  MustInsert(&cache, 4, 64);  // evicts 2: lowest frequency
  EXPECT_TRUE(Contains(&cache, 1));
  EXPECT_FALSE(Contains(&cache, 2));
  EXPECT_TRUE(Contains(&cache, 3));

  // 3 (freq 2 after the Contains() above) vs 4 (freq 1): 4 goes. But first
  // equalize: after the probes above, 1 has freq 5, 3 has freq 3, 4 has
  // freq 1 — the victim of the next insert is 4, the lowest.
  MustInsert(&cache, 5, 64);
  EXPECT_FALSE(Contains(&cache, 4));
  EXPECT_TRUE(Contains(&cache, 3));
}

TEST(CacheManagerTest, TiedFrequenciesEvictOldestInsertFirst) {
  CacheManager::Options options;
  options.shard_count = 1;
  options.budget_bytes = 3 * (64 + CacheManager::kEntryOverheadBytes);
  CacheManager cache(options);

  MustInsert(&cache, 1, 64);
  MustInsert(&cache, 2, 64);
  MustInsert(&cache, 3, 64);
  // All at frequency zero: insertion order breaks the tie, oldest first.
  MustInsert(&cache, 4, 64);
  EXPECT_FALSE(Contains(&cache, 1));
  MustInsert(&cache, 5, 64);
  EXPECT_FALSE(Contains(&cache, 2));
  EXPECT_TRUE(Contains(&cache, 3));
}

TEST(CacheManagerTest, SeededAccessSequenceKeepsHotEntries) {
  // Property-style check: under a skewed random access pattern, the entries
  // the sequence hammers must survive budget pressure from a stream of
  // cold inserts, whatever the interleaving.
  CacheManager::Options options;
  options.shard_count = 1;
  options.budget_bytes = 8 * (32 + CacheManager::kEntryOverheadBytes);
  CacheManager cache(options);

  const std::uint64_t kHotA = 1000;
  const std::uint64_t kHotB = 1001;
  MustInsert(&cache, kHotA, 32);
  MustInsert(&cache, kHotB, 32);

  Rng rng(/*seed=*/20260807);
  std::uint64_t cold_id = 0;
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t draw = rng.UniformInt(4);
    if (draw == 0) {
      EXPECT_TRUE(Contains(&cache, kHotA)) << "step " << step;
    } else if (draw == 1) {
      EXPECT_TRUE(Contains(&cache, kHotB)) << "step " << step;
    } else {
      std::uint64_t epoch = 0;
      cache.LookupAs<std::string>(Key(++cold_id), &epoch);
      cache.InsertAs<std::string>(Key(cold_id), Payload(32), 32, epoch);
    }
    ASSERT_LE(cache.bytes_used(), options.budget_bytes);
  }
  EXPECT_LE(cache.bytes_highwater(), options.budget_bytes);
  EXPECT_GT(cache.TotalStats().evictions, 0u);
}

TEST(CacheManagerTest, FrequencyWrapAroundAgesSaturatedEntry) {
  CacheManager::Options options;
  options.shard_count = 1;
  options.budget_bytes = 2 * (16 + CacheManager::kEntryOverheadBytes);
  CacheManager cache(options);

  // Drive entry 1 through the full uint16 range: 65536 hits wrap its
  // frequency back to exactly 0, making the former hot entry the coldest.
  MustInsert(&cache, 1, 16);
  for (int i = 0; i < 65536; ++i) {
    ASSERT_TRUE(Contains(&cache, 1));
  }
  MustInsert(&cache, 2, 16);
  ASSERT_TRUE(Contains(&cache, 2));  // entry 2 now has frequency 1

  // Budget forces one eviction; the wrapped entry (freq 0) loses to the
  // once-hit entry even though it absorbed 65536 hits in this lifetime.
  MustInsert(&cache, 3, 16);
  EXPECT_FALSE(Contains(&cache, 1));
  EXPECT_TRUE(Contains(&cache, 2));
}

TEST(CacheManagerTest, OversizedPayloadIsRejectedNotInserted) {
  CacheManager::Options options;
  options.shard_count = 1;
  options.budget_bytes = 256;
  CacheManager cache(options);

  MustInsert(&cache, 1, 64);
  std::uint64_t epoch = 0;
  cache.LookupAs<std::string>(Key(2), &epoch);
  EXPECT_FALSE(cache.InsertAs<std::string>(Key(2), Payload(4096), 4096, epoch));
  // The resident entry is untouched; the reject is counted.
  EXPECT_TRUE(Contains(&cache, 1));
  EXPECT_EQ(cache.TotalStats().rejected, 1u);
  EXPECT_EQ(cache.bytes_used(), 64 + CacheManager::kEntryOverheadBytes);
}

TEST(CacheManagerTest, StaleEpochTokenIsRejected) {
  CacheManager cache(CacheManager::Options{});
  std::uint64_t epoch = 0;
  EXPECT_EQ(cache.LookupAs<std::string>(Key(1), &epoch), nullptr);

  // Snapshot reload between the miss and the insert: the token is stale.
  cache.BeginEpoch(/*snapshot_identity=*/1);
  EXPECT_FALSE(cache.InsertAs<std::string>(Key(1), Payload(8), 8, epoch));
  EXPECT_FALSE(Contains(&cache, 1));
  EXPECT_GE(cache.TotalStats().rejected, 1u);

  // A fresh miss hands out the new epoch, which inserts fine.
  std::uint64_t fresh = 0;
  EXPECT_EQ(cache.LookupAs<std::string>(Key(1), &fresh), nullptr);
  EXPECT_TRUE(cache.InsertAs<std::string>(Key(1), Payload(8), 8, fresh));
  EXPECT_TRUE(Contains(&cache, 1));
}

TEST(CacheManagerTest, DuplicateInsertIsSuccessWithoutDoubleCharge) {
  CacheManager::Options options;
  options.shard_count = 1;
  CacheManager cache(options);

  std::uint64_t epoch = 0;
  cache.LookupAs<std::string>(Key(1), &epoch);
  ASSERT_TRUE(cache.InsertAs<std::string>(Key(1), Payload(32), 32, epoch));
  const std::uint64_t bytes_after_first = cache.bytes_used();
  // A racing duplicate (same key, same epoch) reports success but must not
  // charge a second copy.
  EXPECT_TRUE(cache.InsertAs<std::string>(Key(1), Payload(32), 32, epoch));
  EXPECT_EQ(cache.bytes_used(), bytes_after_first);
  EXPECT_EQ(cache.TotalStats().entries, 1u);
}

TEST(CacheManagerTest, KindStatsAttributeTrafficPerKind) {
  CacheManager cache(CacheManager::Options{});
  MustInsert(&cache, 1, 16, CacheKind::kLeafScan);
  MustInsert(&cache, 1, 16, CacheKind::kRepresentatives);
  MustInsert(&cache, 1, 16, CacheKind::kTopK);
  ASSERT_TRUE(Contains(&cache, 1, CacheKind::kTopK));
  ASSERT_TRUE(Contains(&cache, 1, CacheKind::kTopK));

  EXPECT_EQ(cache.KindStats(CacheKind::kTopK).hits, 2u);
  EXPECT_EQ(cache.KindStats(CacheKind::kLeafScan).hits, 0u);
  EXPECT_EQ(cache.KindStats(CacheKind::kRepresentatives).insertions, 1u);
  for (CacheKind kind : {CacheKind::kLeafScan, CacheKind::kRepresentatives,
                         CacheKind::kTopK}) {
    EXPECT_EQ(cache.KindStats(kind).entries, 1u);
    EXPECT_EQ(cache.KindStats(kind).bytes_used,
              16u + CacheManager::kEntryOverheadBytes);
  }
  const CacheStats total = cache.TotalStats();
  EXPECT_EQ(total.entries, 3u);
  EXPECT_EQ(total.hits, 2u);
}

TEST(CacheManagerTest, HashBytesIsDeterministicAndPositionSensitive) {
  const char data[] = "weights:0.25,0.75";
  EXPECT_EQ(HashBytes(data, sizeof(data)), HashBytes(data, sizeof(data)));
  const char swapped[] = "weights:0.75,0.25";
  EXPECT_NE(HashBytes(data, sizeof(data)), HashBytes(swapped, sizeof(swapped)));
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(CacheManagerTest, ShardCountIsClamped) {
  CacheManager::Options options;
  options.shard_count = 0;
  EXPECT_EQ(CacheManager(options).shard_count(), 1u);
  options.shard_count = 100000;
  EXPECT_EQ(CacheManager(options).shard_count(), 256u);
}

}  // namespace
}  // namespace cache
}  // namespace qdcbir
