#include "qdcbir/eval/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a much longer name", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // Every line has equal width.
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, MissingCellsPrintEmpty) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"1"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("| 1 |"), std::string::npos);
}

TEST(TablePrinterTest, ExtraCellsAreDropped) {
  TablePrinter table({"A"});
  table.AddRow({"1", "dropped"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_EQ(out.str().find("dropped"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::Num(-1.5, 1), "-1.5");
  EXPECT_EQ(TablePrinter::Num(2.0), "2.00");
}

TEST(TablePrinterTest, HeaderSeparatorUsesDashes) {
  TablePrinter table({"X"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("|---"), std::string::npos);
}

}  // namespace
}  // namespace qdcbir
