// Batched session execution (`SessionRunner::RunQdBatch` /
// `RunEngineBatch`): concurrent oracle-driven sessions model multi-user
// load, and every job must match the sequential single-session run with
// the same derived seed, at any pool size.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/session_runner.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

class RunBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 30;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 900;
    options.image_width = 32;
    options.image_height = 32;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());

    RfsBuildOptions build;
    build.tree.max_entries = 40;
    build.tree.min_entries = 16;
    rfs_ = new RfsTree(RfsBuilder::Build(db_->features(), build).value());
  }
  static void TearDownTestSuite() {
    delete rfs_;
    delete db_;
  }

  static QueryGroundTruth Gt(const char* query) {
    return BuildGroundTruth(*db_, db_->catalog().FindQuery(query).value())
        .value();
  }

  static const ImageDatabase* db_;
  static const RfsTree* rfs_;
};

const ImageDatabase* RunBatchTest::db_ = nullptr;
const RfsTree* RunBatchTest::rfs_ = nullptr;

TEST_F(RunBatchTest, QdBatchMatchesSequentialSessions) {
  const QueryGroundTruth bird = Gt("bird");
  const QueryGroundTruth car = Gt("car");
  const QueryGroundTruth rose = Gt("rose");
  const std::vector<const QueryGroundTruth*> gts = {&bird, &car,  &rose,
                                                    &bird, &rose, &car};
  ProtocolOptions protocol;
  protocol.seed = 100;

  ThreadPool pool(4);
  const std::vector<StatusOr<RunOutcome>> batch =
      SessionRunner::RunQdBatch(*rfs_, gts, QdOptions{}, protocol, &pool);
  ASSERT_EQ(batch.size(), gts.size());

  for (std::size_t job = 0; job < gts.size(); ++job) {
    ASSERT_TRUE(batch[job].ok()) << batch[job].status().ToString();
    ProtocolOptions job_protocol = protocol;
    job_protocol.seed = protocol.seed + job;
    const RunOutcome reference =
        SessionRunner::RunQd(*rfs_, *gts[job], QdOptions{}, job_protocol)
            .value();
    EXPECT_EQ(batch[job]->final_results, reference.final_results)
        << "job " << job;
    EXPECT_EQ(batch[job]->final_precision, reference.final_precision);
    EXPECT_EQ(batch[job]->final_recall, reference.final_recall);
    EXPECT_EQ(batch[job]->qd_stats.localized_subqueries,
              reference.qd_stats.localized_subqueries);
  }
}

TEST_F(RunBatchTest, QdBatchIdenticalAcrossPoolSizes) {
  const QueryGroundTruth bird = Gt("bird");
  const QueryGroundTruth horse = Gt("horse");
  const std::vector<const QueryGroundTruth*> gts = {&bird, &horse, &bird,
                                                    &horse};
  ProtocolOptions protocol;
  protocol.seed = 31;

  ThreadPool sequential(1);
  ThreadPool wide(8);
  const auto batch1 = SessionRunner::RunQdBatch(*rfs_, gts, QdOptions{},
                                                protocol, &sequential);
  const auto batch8 =
      SessionRunner::RunQdBatch(*rfs_, gts, QdOptions{}, protocol, &wide);
  ASSERT_EQ(batch1.size(), batch8.size());
  for (std::size_t job = 0; job < batch1.size(); ++job) {
    ASSERT_TRUE(batch1[job].ok());
    ASSERT_TRUE(batch8[job].ok());
    EXPECT_EQ(batch1[job]->final_results, batch8[job]->final_results);
  }
}

TEST_F(RunBatchTest, EngineBatchMatchesSequentialRuns) {
  const QueryGroundTruth bird = Gt("bird");
  const QueryGroundTruth car = Gt("car");
  const std::vector<const QueryGroundTruth*> gts = {&bird, &car, &bird};
  ProtocolOptions protocol;
  protocol.seed = 7;

  ThreadPool pool(4);
  const auto batch = SessionRunner::RunEngineBatch(
      [&](std::size_t) -> std::unique_ptr<FeedbackEngine> {
        return std::make_unique<MvEngine>(db_);
      },
      gts, protocol, &pool);
  ASSERT_EQ(batch.size(), gts.size());

  for (std::size_t job = 0; job < gts.size(); ++job) {
    ASSERT_TRUE(batch[job].ok()) << batch[job].status().ToString();
    ProtocolOptions job_protocol = protocol;
    job_protocol.seed = protocol.seed + job;
    MvEngine reference_engine(db_);
    const RunOutcome reference =
        SessionRunner::RunEngine(reference_engine, *gts[job], job_protocol)
            .value();
    EXPECT_EQ(batch[job]->final_results, reference.final_results)
        << "job " << job;
    EXPECT_EQ(batch[job]->final_precision, reference.final_precision);
  }
}

TEST_F(RunBatchTest, NullEngineFactoryReportsError) {
  const QueryGroundTruth bird = Gt("bird");
  const std::vector<const QueryGroundTruth*> gts = {&bird};
  ThreadPool pool(2);
  const auto batch = SessionRunner::RunEngineBatch(
      [](std::size_t) { return std::unique_ptr<FeedbackEngine>(); }, gts,
      ProtocolOptions{}, &pool);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch[0].ok());
}

TEST_F(RunBatchTest, EmptyBatchIsEmpty) {
  ThreadPool pool(2);
  EXPECT_TRUE(SessionRunner::RunQdBatch(*rfs_, {}, QdOptions{},
                                        ProtocolOptions{}, &pool)
                  .empty());
}

}  // namespace
}  // namespace qdcbir
