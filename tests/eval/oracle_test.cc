#include "qdcbir/eval/oracle.h"

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

QueryGroundTruth SimpleGroundTruth() {
  QueryGroundTruth gt;
  gt.subconcept_images = {{0, 1, 2, 3, 4}};
  for (ImageId i = 0; i < 5; ++i) {
    gt.all_images.push_back(i);
    gt.relevant.insert(i);
  }
  return gt;
}

TEST(OracleTest, NoiselessOracleMarksExactlyTheRelevant) {
  const QueryGroundTruth gt = SimpleGroundTruth();
  OracleUser oracle;
  const std::vector<ImageId> display = {7, 0, 9, 1, 8};
  const auto picks = oracle.SelectRelevant(display, gt, 10);
  EXPECT_EQ(picks, (std::vector<ImageId>{0, 1}));
}

TEST(OracleTest, RespectsMaxPicks) {
  const QueryGroundTruth gt = SimpleGroundTruth();
  OracleUser oracle;
  const std::vector<ImageId> display = {0, 1, 2, 3, 4};
  EXPECT_EQ(oracle.SelectRelevant(display, gt, 2).size(), 2u);
  EXPECT_TRUE(oracle.SelectRelevant(display, gt, 0).empty());
}

TEST(OracleTest, StaticRelevanceCheck) {
  const QueryGroundTruth gt = SimpleGroundTruth();
  EXPECT_TRUE(OracleUser::IsRelevant(3, gt));
  EXPECT_FALSE(OracleUser::IsRelevant(42, gt));
}

TEST(OracleTest, MissRateDropsSomeRelevant) {
  const QueryGroundTruth gt = SimpleGroundTruth();
  OracleOptions options;
  options.miss_rate = 0.5;
  options.seed = 3;
  OracleUser oracle(options);
  int total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    total += static_cast<int>(
        oracle.SelectRelevant({0, 1, 2, 3, 4}, gt, 10).size());
  }
  // Expect about half of 1000 marks.
  EXPECT_GT(total, 350);
  EXPECT_LT(total, 650);
}

TEST(OracleTest, FalseMarkRateAddsIrrelevant) {
  const QueryGroundTruth gt = SimpleGroundTruth();
  OracleOptions options;
  options.false_mark_rate = 0.5;
  options.seed = 5;
  OracleUser oracle(options);
  int false_marks = 0;
  for (int trial = 0; trial < 200; ++trial) {
    for (const ImageId id :
         oracle.SelectRelevant({90, 91, 92, 93}, gt, 10)) {
      EXPECT_GE(id, 90u);
      ++false_marks;
    }
  }
  EXPECT_GT(false_marks, 250);
  EXPECT_LT(false_marks, 550);
}

TEST(OracleTest, DeterministicPerSeed) {
  const QueryGroundTruth gt = SimpleGroundTruth();
  OracleOptions options;
  options.miss_rate = 0.3;
  options.seed = 11;
  OracleUser a(options), b(options);
  const std::vector<ImageId> display = {0, 1, 2, 3, 4, 90, 91};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.SelectRelevant(display, gt, 10),
              b.SelectRelevant(display, gt, 10));
  }
}

}  // namespace
}  // namespace qdcbir
