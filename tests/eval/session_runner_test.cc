#include "qdcbir/eval/session_runner.h"

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/query/fagin_engine.h"
#include "qdcbir/query/mars_engine.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/query/qcluster_engine.h"
#include "qdcbir/query/qpm_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

class SessionRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 30;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 900;
    options.image_width = 32;
    options.image_height = 32;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());

    RfsBuildOptions build;
    build.tree.max_entries = 40;
    build.tree.min_entries = 16;
    rfs_ = new RfsTree(RfsBuilder::Build(db_->features(), build).value());
  }
  static void TearDownTestSuite() {
    delete rfs_;
    delete db_;
  }

  static QueryGroundTruth Gt(const char* query) {
    return BuildGroundTruth(*db_, db_->catalog().FindQuery(query).value())
        .value();
  }

  static const ImageDatabase* db_;
  static const RfsTree* rfs_;
};

const ImageDatabase* SessionRunnerTest::db_ = nullptr;
const RfsTree* SessionRunnerTest::rfs_ = nullptr;

TEST_F(SessionRunnerTest, QdProtocolProducesCompleteOutcome) {
  const QueryGroundTruth gt = Gt("bird");
  ProtocolOptions protocol;
  protocol.seed = 7;
  const RunOutcome outcome =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();

  EXPECT_EQ(outcome.rounds.size(), 3u);
  EXPECT_EQ(outcome.iteration_seconds.size(), 3u);
  EXPECT_EQ(outcome.final_results.size(), gt.size());
  EXPECT_GT(outcome.final_gtir, 0.0);
  EXPECT_GE(outcome.final_precision, 0.0);
  EXPECT_LE(outcome.final_precision, 1.0);
  // Paper protocol: retrieved == |ground truth| makes precision == recall.
  EXPECT_NEAR(outcome.final_precision, outcome.final_recall, 1e-9);
  EXPECT_GT(outcome.total_seconds, 0.0);
}

TEST_F(SessionRunnerTest, QdRoundsReportGtirProgression) {
  const QueryGroundTruth gt = Gt("bird");
  ProtocolOptions protocol;
  protocol.seed = 11;
  const RunOutcome outcome =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();
  // Interim rounds define GTIR but not precision (QD runs no k-NN yet).
  EXPECT_FALSE(outcome.rounds[0].precision_defined);
  EXPECT_FALSE(outcome.rounds[1].precision_defined);
  EXPECT_TRUE(outcome.rounds[2].precision_defined);
  // GTIR never decreases across rounds (marks accumulate).
  EXPECT_LE(outcome.rounds[0].gtir, outcome.rounds[1].gtir + 1e-9);
}

TEST_F(SessionRunnerTest, QdStatsReportLocalizedWork) {
  const QueryGroundTruth gt = Gt("car");
  ProtocolOptions protocol;
  protocol.seed = 13;
  const RunOutcome outcome =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();
  EXPECT_GT(outcome.qd_stats.localized_subqueries, 0u);
  // Localized k-NN inspects far fewer candidates than a full scan per round.
  EXPECT_LT(outcome.qd_stats.knn_candidates, 3 * db_->size());
  EXPECT_FALSE(outcome.qd_result.groups.empty());
}

TEST_F(SessionRunnerTest, EngineProtocolProducesCompleteOutcome) {
  const QueryGroundTruth gt = Gt("bird");
  ProtocolOptions protocol;
  protocol.seed = 17;
  MvEngine engine(db_);
  const RunOutcome outcome =
      SessionRunner::RunEngine(engine, gt, protocol).value();
  EXPECT_EQ(outcome.rounds.size(), 3u);
  EXPECT_EQ(outcome.final_results.size(), gt.size());
  EXPECT_EQ(outcome.global_stats.feedback_rounds, 3u);
  EXPECT_GT(outcome.global_stats.global_knn_computations, 0u);
}

TEST_F(SessionRunnerTest, RetrievalSizeOverride) {
  const QueryGroundTruth gt = Gt("rose");
  ProtocolOptions protocol;
  protocol.retrieval_size = 10;
  protocol.seed = 19;
  const RunOutcome outcome =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();
  EXPECT_EQ(outcome.final_results.size(), 10u);
}

TEST_F(SessionRunnerTest, DeterministicForFixedSeeds) {
  const QueryGroundTruth gt = Gt("horse");
  ProtocolOptions protocol;
  protocol.seed = 23;
  const RunOutcome a =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();
  const RunOutcome b =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();
  EXPECT_EQ(a.final_results, b.final_results);
  EXPECT_EQ(a.final_precision, b.final_precision);
}

TEST_F(SessionRunnerTest, DifferentSeedsVaryDisplays) {
  // Different protocol seeds shuffle what the simulated user browses. (The
  // final outcome may still coincide once every relevant representative has
  // been found, so the displays — not the results — are compared.)
  QdOptions o1, o2;
  o1.seed = 29;
  o2.seed = 31;
  QdSession s1(rfs_, o1), s2(rfs_, o2);
  const auto d1 = s1.Start();
  const auto d2 = s2.Start();
  ASSERT_FALSE(d1.empty());
  ASSERT_FALSE(d2.empty());
  EXPECT_NE(d1[0].images, d2[0].images);
}

TEST_F(SessionRunnerTest, NoisyOracleStillCompletes) {
  const QueryGroundTruth gt = Gt("bird");
  ProtocolOptions protocol;
  protocol.seed = 37;
  protocol.oracle.miss_rate = 0.2;
  protocol.oracle.false_mark_rate = 0.01;
  const StatusOr<RunOutcome> outcome =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->final_results.size(), gt.size());
}

TEST_F(SessionRunnerTest, QpmEngineRunsUnderProtocol) {
  const QueryGroundTruth gt = Gt("rose");
  ProtocolOptions protocol;
  protocol.seed = 41;
  QpmEngine engine(db_);
  const StatusOr<RunOutcome> outcome =
      SessionRunner::RunEngine(engine, gt, protocol);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->final_precision, 0.0);
}

TEST_F(SessionRunnerTest, EveryBaselineEngineCompletesTheProtocol) {
  const QueryGroundTruth gt = Gt("car");
  ProtocolOptions protocol;
  protocol.seed = 43;
  MarsEngine mars(db_);
  QclusterEngine qcluster(db_);
  FaginEngine fagin(db_);
  for (FeedbackEngine* engine :
       std::initializer_list<FeedbackEngine*>{&mars, &qcluster, &fagin}) {
    const StatusOr<RunOutcome> outcome =
        SessionRunner::RunEngine(*engine, gt, protocol);
    ASSERT_TRUE(outcome.ok())
        << engine->Name() << ": " << outcome.status().ToString();
    EXPECT_EQ(outcome->final_results.size(), gt.size()) << engine->Name();
    EXPECT_GT(outcome->global_stats.candidates_scanned, 0u)
        << engine->Name();
    EXPECT_EQ(outcome->rounds.size(), 3u) << engine->Name();
  }
}

TEST_F(SessionRunnerTest, QdFeatureWeightsRunUnderProtocol) {
  const QueryGroundTruth gt = Gt("rose");
  ProtocolOptions protocol;
  protocol.seed = 47;
  QdOptions options;
  options.feature_weights = MakeGroupWeights(3.0, 1.0, 1.0);
  const StatusOr<RunOutcome> outcome =
      SessionRunner::RunQd(*rfs_, gt, options, protocol);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->final_results.size(), gt.size());
  EXPECT_GT(outcome->qd_stats.knn_nodes_visited, 0u);
}

}  // namespace
}  // namespace qdcbir
