#include "qdcbir/eval/ground_truth.h"

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"

namespace qdcbir {
namespace {

class GroundTruthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 25;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 600;
    options.image_width = 24;
    options.image_height = 24;
    options.extract_viewpoint_channels = false;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());
  }
  static void TearDownTestSuite() { delete db_; }
  static const ImageDatabase* db_;
};

const ImageDatabase* GroundTruthTest::db_ = nullptr;

TEST_F(GroundTruthTest, ResolvesBirdQuery) {
  const QueryConceptSpec spec = db_->catalog().FindQuery("bird").value();
  const QueryGroundTruth gt = BuildGroundTruth(*db_, spec).value();
  EXPECT_EQ(gt.subconcept_images.size(), 3u);
  EXPECT_FALSE(gt.all_images.empty());
  EXPECT_EQ(gt.relevant.size(), gt.all_images.size());
  for (const ImageId id : gt.all_images) {
    EXPECT_TRUE(gt.IsRelevant(id));
    EXPECT_EQ(db_->record(id).category,
              db_->catalog().FindCategory("bird").value());
  }
}

TEST_F(GroundTruthTest, ComputerQueryUnionsLaptopVariants) {
  const QueryConceptSpec spec = db_->catalog().FindQuery("computer").value();
  const QueryGroundTruth gt = BuildGroundTruth(*db_, spec).value();
  ASSERT_EQ(gt.subconcept_images.size(), 3u);
  // The laptop ground-truth group merges two dataset sub-concepts, so it is
  // at least as large as either.
  const SubConceptId clear =
      db_->catalog().FindSubConcept("laptop_clear").value();
  EXPECT_GT(gt.subconcept_images[2].size(),
            db_->ImagesOfSubConcept(clear).size() - 1);
}

TEST_F(GroundTruthTest, RejectsEmptySpec) {
  QueryConceptSpec empty;
  EXPECT_EQ(BuildGroundTruth(*db_, empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GroundTruthTest, RejectsSpecWithUnpopulatedSubconcept) {
  QueryConceptSpec spec;
  spec.name = "bogus";
  spec.subconcepts = {{"ghost", {9999}}};
  EXPECT_EQ(BuildGroundTruth(*db_, spec).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GroundTruthTest, BuildAllCoversElevenQueries) {
  const std::vector<QueryGroundTruth> all =
      BuildAllGroundTruths(*db_).value();
  EXPECT_EQ(all.size(), 11u);
  for (const QueryGroundTruth& gt : all) {
    EXPECT_FALSE(gt.all_images.empty()) << gt.spec.name;
  }
}

TEST_F(GroundTruthTest, IrrelevantImagesAreNotMembers) {
  const QueryGroundTruth gt =
      BuildGroundTruth(*db_, db_->catalog().FindQuery("rose").value())
          .value();
  const CategoryId rose = db_->catalog().FindCategory("rose").value();
  for (ImageId id = 0; id < db_->size(); ++id) {
    if (db_->record(id).category != rose) {
      EXPECT_FALSE(gt.IsRelevant(id));
    }
  }
}

}  // namespace
}  // namespace qdcbir
