#include "qdcbir/eval/metrics.h"

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

QueryGroundTruth MakeGroundTruth() {
  // Two sub-concepts: {0, 1, 2} and {10, 11}.
  QueryGroundTruth gt;
  gt.spec.name = "test";
  gt.spec.subconcepts = {{"a", {}}, {"b", {}}};
  gt.subconcept_images = {{0, 1, 2}, {10, 11}};
  for (const auto& group : gt.subconcept_images) {
    for (const ImageId id : group) {
      gt.all_images.push_back(id);
      gt.relevant.insert(id);
    }
  }
  return gt;
}

TEST(PrecisionRecallTest, PerfectRetrieval) {
  const QueryGroundTruth gt = MakeGroundTruth();
  const PrecisionRecall pr =
      ComputePrecisionRecall({0, 1, 2, 10, 11}, gt);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(PrecisionRecallTest, PartialRetrieval) {
  const QueryGroundTruth gt = MakeGroundTruth();
  // 2 relevant of 4 retrieved; 2 of 5 relevant found.
  const PrecisionRecall pr = ComputePrecisionRecall({0, 10, 99, 98}, gt);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 0.4);
}

TEST(PrecisionRecallTest, PrecisionEqualsRecallWhenSizesMatch) {
  // The paper's protocol: |retrieved| == |ground truth|.
  const QueryGroundTruth gt = MakeGroundTruth();
  const PrecisionRecall pr =
      ComputePrecisionRecall({0, 1, 99, 98, 97}, gt);
  EXPECT_DOUBLE_EQ(pr.precision, pr.recall);
}

TEST(PrecisionRecallTest, EmptyResults) {
  const QueryGroundTruth gt = MakeGroundTruth();
  const PrecisionRecall pr = ComputePrecisionRecall({}, gt);
  EXPECT_EQ(pr.precision, 0.0);
  EXPECT_EQ(pr.recall, 0.0);
}

TEST(PrecisionRecallTest, DuplicatesCountOnce) {
  const QueryGroundTruth gt = MakeGroundTruth();
  const PrecisionRecall pr = ComputePrecisionRecall({0, 0, 0}, gt);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.2);
}

TEST(GtirTest, MatchesPaperDefinition) {
  const QueryGroundTruth gt = MakeGroundTruth();
  // Both sub-concepts retrieved.
  EXPECT_DOUBLE_EQ(ComputeGtir({0, 10}, gt), 1.0);
  // Only the first.
  EXPECT_DOUBLE_EQ(ComputeGtir({0, 1, 2}, gt), 0.5);
  // None.
  EXPECT_DOUBLE_EQ(ComputeGtir({99}, gt), 0.0);
}

TEST(GtirTest, PaperExamplePersonQuery) {
  // "A person" has 3 sub-concepts; capturing 1 of 3 yields GTIR = 1/3.
  QueryGroundTruth gt;
  gt.subconcept_images = {{0}, {1}, {2}};
  for (int i = 0; i < 3; ++i) gt.relevant.insert(i);
  EXPECT_NEAR(ComputeGtir({0}, gt), 1.0 / 3.0, 1e-12);
}

TEST(GtirTest, MinHitsRaisesTheBar) {
  const QueryGroundTruth gt = MakeGroundTruth();
  // One image of each sub-concept: GTIR=1 at min_hits=1, 0 at min_hits=2.
  EXPECT_DOUBLE_EQ(ComputeGtir({0, 10}, gt, 1), 1.0);
  EXPECT_DOUBLE_EQ(ComputeGtir({0, 10}, gt, 2), 0.0);
  EXPECT_DOUBLE_EQ(ComputeGtir({0, 1, 10, 11}, gt, 2), 1.0);
}

TEST(GtirTest, EmptyGroundTruthIsZero) {
  QueryGroundTruth gt;
  EXPECT_EQ(ComputeGtir({0, 1}, gt), 0.0);
}

TEST(PrecisionAtNTest, Prefix) {
  const QueryGroundTruth gt = MakeGroundTruth();
  const std::vector<ImageId> results = {0, 99, 1, 98};
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, gt, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, gt, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, gt, 4), 0.5);
  // n larger than the list clamps.
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, gt, 100), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtN({}, gt, 5), 0.0);
}

}  // namespace
}  // namespace qdcbir
