file(REMOVE_RECURSE
  "libqdcbir_eval.a"
)
