# Empty dependencies file for qdcbir_eval.
# This may be replaced when dependencies are built.
