file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/ground_truth.cc.o"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/ground_truth.cc.o.d"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/metrics.cc.o"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/metrics.cc.o.d"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/oracle.cc.o"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/oracle.cc.o.d"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/session_runner.cc.o"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/session_runner.cc.o.d"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/table_printer.cc.o"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/table_printer.cc.o.d"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/timer.cc.o"
  "CMakeFiles/qdcbir_eval.dir/qdcbir/eval/timer.cc.o.d"
  "libqdcbir_eval.a"
  "libqdcbir_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
