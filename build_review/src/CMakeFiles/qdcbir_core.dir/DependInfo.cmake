
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/core/distance.cc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/distance.cc.o" "gcc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/distance.cc.o.d"
  "/root/repo/src/qdcbir/core/feature_vector.cc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/feature_vector.cc.o" "gcc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/feature_vector.cc.o.d"
  "/root/repo/src/qdcbir/core/rng.cc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/rng.cc.o" "gcc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/rng.cc.o.d"
  "/root/repo/src/qdcbir/core/stats.cc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/stats.cc.o" "gcc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/stats.cc.o.d"
  "/root/repo/src/qdcbir/core/status.cc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/status.cc.o" "gcc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/status.cc.o.d"
  "/root/repo/src/qdcbir/core/thread_pool.cc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/thread_pool.cc.o" "gcc" "src/CMakeFiles/qdcbir_core.dir/qdcbir/core/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
