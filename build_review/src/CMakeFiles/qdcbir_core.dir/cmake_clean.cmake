file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/distance.cc.o"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/distance.cc.o.d"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/feature_vector.cc.o"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/feature_vector.cc.o.d"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/rng.cc.o"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/rng.cc.o.d"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/stats.cc.o"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/stats.cc.o.d"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/status.cc.o"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/status.cc.o.d"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/thread_pool.cc.o"
  "CMakeFiles/qdcbir_core.dir/qdcbir/core/thread_pool.cc.o.d"
  "libqdcbir_core.a"
  "libqdcbir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
