# Empty compiler generated dependencies file for qdcbir_core.
# This may be replaced when dependencies are built.
