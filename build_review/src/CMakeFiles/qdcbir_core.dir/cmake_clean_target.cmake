file(REMOVE_RECURSE
  "libqdcbir_core.a"
)
