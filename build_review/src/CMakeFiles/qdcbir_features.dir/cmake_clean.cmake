file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/color_moments.cc.o"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/color_moments.cc.o.d"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/edge_structure.cc.o"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/edge_structure.cc.o.d"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/extractor.cc.o"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/extractor.cc.o.d"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/normalizer.cc.o"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/normalizer.cc.o.d"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/wavelet_texture.cc.o"
  "CMakeFiles/qdcbir_features.dir/qdcbir/features/wavelet_texture.cc.o.d"
  "libqdcbir_features.a"
  "libqdcbir_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
