# Empty compiler generated dependencies file for qdcbir_features.
# This may be replaced when dependencies are built.
