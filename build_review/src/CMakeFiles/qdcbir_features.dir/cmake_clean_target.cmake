file(REMOVE_RECURSE
  "libqdcbir_features.a"
)
