# Empty dependencies file for qdcbir_query.
# This may be replaced when dependencies are built.
