file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/fagin_engine.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/fagin_engine.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/feedback_engine.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/feedback_engine.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/knn.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/knn.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/mars_engine.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/mars_engine.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/multipoint.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/multipoint.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/mv_engine.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/mv_engine.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/qcluster_engine.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/qcluster_engine.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/qd_engine.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/qd_engine.cc.o.d"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/qpm_engine.cc.o"
  "CMakeFiles/qdcbir_query.dir/qdcbir/query/qpm_engine.cc.o.d"
  "libqdcbir_query.a"
  "libqdcbir_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
