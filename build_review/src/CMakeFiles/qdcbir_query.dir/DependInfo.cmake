
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/query/fagin_engine.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/fagin_engine.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/fagin_engine.cc.o.d"
  "/root/repo/src/qdcbir/query/feedback_engine.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/feedback_engine.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/feedback_engine.cc.o.d"
  "/root/repo/src/qdcbir/query/knn.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/knn.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/knn.cc.o.d"
  "/root/repo/src/qdcbir/query/mars_engine.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/mars_engine.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/mars_engine.cc.o.d"
  "/root/repo/src/qdcbir/query/multipoint.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/multipoint.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/multipoint.cc.o.d"
  "/root/repo/src/qdcbir/query/mv_engine.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/mv_engine.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/mv_engine.cc.o.d"
  "/root/repo/src/qdcbir/query/qcluster_engine.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/qcluster_engine.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/qcluster_engine.cc.o.d"
  "/root/repo/src/qdcbir/query/qd_engine.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/qd_engine.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/qd_engine.cc.o.d"
  "/root/repo/src/qdcbir/query/qpm_engine.cc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/qpm_engine.cc.o" "gcc" "src/CMakeFiles/qdcbir_query.dir/qdcbir/query/qpm_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_review/src/CMakeFiles/qdcbir_rfs.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_dataset.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_cluster.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_index.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_features.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
