file(REMOVE_RECURSE
  "libqdcbir_query.a"
)
