file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/color.cc.o"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/color.cc.o.d"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/draw.cc.o"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/draw.cc.o.d"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/image.cc.o"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/image.cc.o.d"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/ppm_io.cc.o"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/ppm_io.cc.o.d"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/texture.cc.o"
  "CMakeFiles/qdcbir_image.dir/qdcbir/image/texture.cc.o.d"
  "libqdcbir_image.a"
  "libqdcbir_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
