# Empty compiler generated dependencies file for qdcbir_image.
# This may be replaced when dependencies are built.
