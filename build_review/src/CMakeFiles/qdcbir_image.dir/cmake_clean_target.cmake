file(REMOVE_RECURSE
  "libqdcbir_image.a"
)
