file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/clustered_bulk_load.cc.o"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/clustered_bulk_load.cc.o.d"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/representative_selector.cc.o"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/representative_selector.cc.o.d"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_builder.cc.o"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_builder.cc.o.d"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_serialization.cc.o"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_serialization.cc.o.d"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_tree.cc.o"
  "CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_tree.cc.o.d"
  "libqdcbir_rfs.a"
  "libqdcbir_rfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_rfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
