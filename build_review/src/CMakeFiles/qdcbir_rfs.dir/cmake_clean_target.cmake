file(REMOVE_RECURSE
  "libqdcbir_rfs.a"
)
