# Empty compiler generated dependencies file for qdcbir_rfs.
# This may be replaced when dependencies are built.
