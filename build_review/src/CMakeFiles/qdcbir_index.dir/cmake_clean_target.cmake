file(REMOVE_RECURSE
  "libqdcbir_index.a"
)
