file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_index.dir/qdcbir/index/rect.cc.o"
  "CMakeFiles/qdcbir_index.dir/qdcbir/index/rect.cc.o.d"
  "CMakeFiles/qdcbir_index.dir/qdcbir/index/rstar_tree.cc.o"
  "CMakeFiles/qdcbir_index.dir/qdcbir/index/rstar_tree.cc.o.d"
  "CMakeFiles/qdcbir_index.dir/qdcbir/index/str_bulk_load.cc.o"
  "CMakeFiles/qdcbir_index.dir/qdcbir/index/str_bulk_load.cc.o.d"
  "libqdcbir_index.a"
  "libqdcbir_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
