
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/index/rect.cc" "src/CMakeFiles/qdcbir_index.dir/qdcbir/index/rect.cc.o" "gcc" "src/CMakeFiles/qdcbir_index.dir/qdcbir/index/rect.cc.o.d"
  "/root/repo/src/qdcbir/index/rstar_tree.cc" "src/CMakeFiles/qdcbir_index.dir/qdcbir/index/rstar_tree.cc.o" "gcc" "src/CMakeFiles/qdcbir_index.dir/qdcbir/index/rstar_tree.cc.o.d"
  "/root/repo/src/qdcbir/index/str_bulk_load.cc" "src/CMakeFiles/qdcbir_index.dir/qdcbir/index/str_bulk_load.cc.o" "gcc" "src/CMakeFiles/qdcbir_index.dir/qdcbir/index/str_bulk_load.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_review/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
