# Empty compiler generated dependencies file for qdcbir_index.
# This may be replaced when dependencies are built.
