file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/cluster_stats.cc.o"
  "CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/cluster_stats.cc.o.d"
  "CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/kmeans.cc.o"
  "CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/kmeans.cc.o.d"
  "CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/pca.cc.o"
  "CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/pca.cc.o.d"
  "libqdcbir_cluster.a"
  "libqdcbir_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
