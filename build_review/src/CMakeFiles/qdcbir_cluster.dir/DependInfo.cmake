
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/cluster/cluster_stats.cc" "src/CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/cluster_stats.cc.o" "gcc" "src/CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/cluster_stats.cc.o.d"
  "/root/repo/src/qdcbir/cluster/kmeans.cc" "src/CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/kmeans.cc.o.d"
  "/root/repo/src/qdcbir/cluster/pca.cc" "src/CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/pca.cc.o" "gcc" "src/CMakeFiles/qdcbir_cluster.dir/qdcbir/cluster/pca.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_review/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
