# Empty dependencies file for qdcbir_cluster.
# This may be replaced when dependencies are built.
