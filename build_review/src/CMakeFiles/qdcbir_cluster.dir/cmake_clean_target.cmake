file(REMOVE_RECURSE
  "libqdcbir_cluster.a"
)
