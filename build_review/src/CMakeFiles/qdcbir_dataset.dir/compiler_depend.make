# Empty compiler generated dependencies file for qdcbir_dataset.
# This may be replaced when dependencies are built.
