file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/catalog.cc.o"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/catalog.cc.o.d"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database.cc.o"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database.cc.o.d"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database_io.cc.o"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database_io.cc.o.d"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/recipe.cc.o"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/recipe.cc.o.d"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/synthesizer.cc.o"
  "CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/synthesizer.cc.o.d"
  "libqdcbir_dataset.a"
  "libqdcbir_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
