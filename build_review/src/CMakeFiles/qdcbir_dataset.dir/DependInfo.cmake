
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/dataset/catalog.cc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/catalog.cc.o" "gcc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/catalog.cc.o.d"
  "/root/repo/src/qdcbir/dataset/database.cc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database.cc.o" "gcc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database.cc.o.d"
  "/root/repo/src/qdcbir/dataset/database_io.cc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database_io.cc.o" "gcc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/database_io.cc.o.d"
  "/root/repo/src/qdcbir/dataset/recipe.cc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/recipe.cc.o" "gcc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/recipe.cc.o.d"
  "/root/repo/src/qdcbir/dataset/synthesizer.cc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/synthesizer.cc.o" "gcc" "src/CMakeFiles/qdcbir_dataset.dir/qdcbir/dataset/synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_review/src/CMakeFiles/qdcbir_features.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_image.dir/DependInfo.cmake"
  "/root/repo/build_review/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
