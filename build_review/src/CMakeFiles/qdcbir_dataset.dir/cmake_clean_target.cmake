file(REMOVE_RECURSE
  "libqdcbir_dataset.a"
)
