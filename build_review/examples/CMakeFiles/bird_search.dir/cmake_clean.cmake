file(REMOVE_RECURSE
  "CMakeFiles/bird_search.dir/bird_search.cpp.o"
  "CMakeFiles/bird_search.dir/bird_search.cpp.o.d"
  "bird_search"
  "bird_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bird_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
