# Empty dependencies file for bird_search.
# This may be replaced when dependencies are built.
