# Empty dependencies file for interactive_cli.
# This may be replaced when dependencies are built.
