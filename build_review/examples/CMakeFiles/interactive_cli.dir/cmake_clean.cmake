file(REMOVE_RECURSE
  "CMakeFiles/interactive_cli.dir/interactive_cli.cpp.o"
  "CMakeFiles/interactive_cli.dir/interactive_cli.cpp.o.d"
  "interactive_cli"
  "interactive_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
