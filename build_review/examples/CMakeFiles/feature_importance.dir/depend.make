# Empty dependencies file for feature_importance.
# This may be replaced when dependencies are built.
