file(REMOVE_RECURSE
  "CMakeFiles/feature_importance.dir/feature_importance.cpp.o"
  "CMakeFiles/feature_importance.dir/feature_importance.cpp.o.d"
  "feature_importance"
  "feature_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
