file(REMOVE_RECURSE
  "CMakeFiles/qdcbir_tool.dir/qdcbir_tool.cc.o"
  "CMakeFiles/qdcbir_tool.dir/qdcbir_tool.cc.o.d"
  "qdcbir_tool"
  "qdcbir_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdcbir_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
