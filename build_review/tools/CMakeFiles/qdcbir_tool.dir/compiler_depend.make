# Empty compiler generated dependencies file for qdcbir_tool.
# This may be replaced when dependencies are built.
