file(REMOVE_RECURSE
  "CMakeFiles/cluster_kmeans_test.dir/cluster/kmeans_test.cc.o"
  "CMakeFiles/cluster_kmeans_test.dir/cluster/kmeans_test.cc.o.d"
  "cluster_kmeans_test"
  "cluster_kmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
