file(REMOVE_RECURSE
  "CMakeFiles/eval_session_runner_test.dir/eval/session_runner_test.cc.o"
  "CMakeFiles/eval_session_runner_test.dir/eval/session_runner_test.cc.o.d"
  "eval_session_runner_test"
  "eval_session_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_session_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
