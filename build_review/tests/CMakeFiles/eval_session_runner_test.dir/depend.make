# Empty dependencies file for eval_session_runner_test.
# This may be replaced when dependencies are built.
