# Empty compiler generated dependencies file for features_normalizer_test.
# This may be replaced when dependencies are built.
