file(REMOVE_RECURSE
  "CMakeFiles/features_normalizer_test.dir/features/normalizer_test.cc.o"
  "CMakeFiles/features_normalizer_test.dir/features/normalizer_test.cc.o.d"
  "features_normalizer_test"
  "features_normalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
