file(REMOVE_RECURSE
  "CMakeFiles/core_thread_pool_test.dir/core/thread_pool_test.cc.o"
  "CMakeFiles/core_thread_pool_test.dir/core/thread_pool_test.cc.o.d"
  "core_thread_pool_test"
  "core_thread_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
