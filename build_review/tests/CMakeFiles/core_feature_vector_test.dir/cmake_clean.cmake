file(REMOVE_RECURSE
  "CMakeFiles/core_feature_vector_test.dir/core/feature_vector_test.cc.o"
  "CMakeFiles/core_feature_vector_test.dir/core/feature_vector_test.cc.o.d"
  "core_feature_vector_test"
  "core_feature_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_feature_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
