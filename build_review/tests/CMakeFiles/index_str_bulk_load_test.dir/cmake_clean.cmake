file(REMOVE_RECURSE
  "CMakeFiles/index_str_bulk_load_test.dir/index/str_bulk_load_test.cc.o"
  "CMakeFiles/index_str_bulk_load_test.dir/index/str_bulk_load_test.cc.o.d"
  "index_str_bulk_load_test"
  "index_str_bulk_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_str_bulk_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
