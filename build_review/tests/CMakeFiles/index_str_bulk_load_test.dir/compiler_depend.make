# Empty compiler generated dependencies file for index_str_bulk_load_test.
# This may be replaced when dependencies are built.
