# Empty dependencies file for query_knn_test.
# This may be replaced when dependencies are built.
