file(REMOVE_RECURSE
  "CMakeFiles/query_knn_test.dir/query/knn_test.cc.o"
  "CMakeFiles/query_knn_test.dir/query/knn_test.cc.o.d"
  "query_knn_test"
  "query_knn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
