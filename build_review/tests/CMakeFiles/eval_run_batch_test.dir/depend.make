# Empty dependencies file for eval_run_batch_test.
# This may be replaced when dependencies are built.
