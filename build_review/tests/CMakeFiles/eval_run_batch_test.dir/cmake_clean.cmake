file(REMOVE_RECURSE
  "CMakeFiles/eval_run_batch_test.dir/eval/run_batch_test.cc.o"
  "CMakeFiles/eval_run_batch_test.dir/eval/run_batch_test.cc.o.d"
  "eval_run_batch_test"
  "eval_run_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_run_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
