file(REMOVE_RECURSE
  "CMakeFiles/rfs_clustered_bulk_load_test.dir/rfs/clustered_bulk_load_test.cc.o"
  "CMakeFiles/rfs_clustered_bulk_load_test.dir/rfs/clustered_bulk_load_test.cc.o.d"
  "rfs_clustered_bulk_load_test"
  "rfs_clustered_bulk_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfs_clustered_bulk_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
