# Empty compiler generated dependencies file for rfs_clustered_bulk_load_test.
# This may be replaced when dependencies are built.
