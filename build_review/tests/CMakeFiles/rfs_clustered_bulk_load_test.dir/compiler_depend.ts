# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rfs_clustered_bulk_load_test.
