# Empty dependencies file for rfs_representative_selector_test.
# This may be replaced when dependencies are built.
