file(REMOVE_RECURSE
  "CMakeFiles/rfs_representative_selector_test.dir/rfs/representative_selector_test.cc.o"
  "CMakeFiles/rfs_representative_selector_test.dir/rfs/representative_selector_test.cc.o.d"
  "rfs_representative_selector_test"
  "rfs_representative_selector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfs_representative_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
