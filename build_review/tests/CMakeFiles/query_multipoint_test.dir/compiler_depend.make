# Empty compiler generated dependencies file for query_multipoint_test.
# This may be replaced when dependencies are built.
