file(REMOVE_RECURSE
  "CMakeFiles/query_multipoint_test.dir/query/multipoint_test.cc.o"
  "CMakeFiles/query_multipoint_test.dir/query/multipoint_test.cc.o.d"
  "query_multipoint_test"
  "query_multipoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_multipoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
