# Empty dependencies file for index_rect_test.
# This may be replaced when dependencies are built.
