file(REMOVE_RECURSE
  "CMakeFiles/index_rect_test.dir/index/rect_test.cc.o"
  "CMakeFiles/index_rect_test.dir/index/rect_test.cc.o.d"
  "index_rect_test"
  "index_rect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_rect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
