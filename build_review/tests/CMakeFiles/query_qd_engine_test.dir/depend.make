# Empty dependencies file for query_qd_engine_test.
# This may be replaced when dependencies are built.
