# Empty dependencies file for rfs_serialization_test.
# This may be replaced when dependencies are built.
