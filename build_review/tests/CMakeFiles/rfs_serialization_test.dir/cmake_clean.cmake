file(REMOVE_RECURSE
  "CMakeFiles/rfs_serialization_test.dir/rfs/rfs_serialization_test.cc.o"
  "CMakeFiles/rfs_serialization_test.dir/rfs/rfs_serialization_test.cc.o.d"
  "rfs_serialization_test"
  "rfs_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfs_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
