file(REMOVE_RECURSE
  "CMakeFiles/dataset_eval_recipes_test.dir/dataset/eval_recipes_test.cc.o"
  "CMakeFiles/dataset_eval_recipes_test.dir/dataset/eval_recipes_test.cc.o.d"
  "dataset_eval_recipes_test"
  "dataset_eval_recipes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_eval_recipes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
