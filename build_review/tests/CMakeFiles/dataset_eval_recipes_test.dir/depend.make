# Empty dependencies file for dataset_eval_recipes_test.
# This may be replaced when dependencies are built.
