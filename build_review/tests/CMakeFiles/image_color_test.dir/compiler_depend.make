# Empty compiler generated dependencies file for image_color_test.
# This may be replaced when dependencies are built.
