file(REMOVE_RECURSE
  "CMakeFiles/image_color_test.dir/image/color_test.cc.o"
  "CMakeFiles/image_color_test.dir/image/color_test.cc.o.d"
  "image_color_test"
  "image_color_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_color_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
