file(REMOVE_RECURSE
  "CMakeFiles/image_texture_test.dir/image/texture_test.cc.o"
  "CMakeFiles/image_texture_test.dir/image/texture_test.cc.o.d"
  "image_texture_test"
  "image_texture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_texture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
