file(REMOVE_RECURSE
  "CMakeFiles/query_qd_determinism_test.dir/query/qd_determinism_test.cc.o"
  "CMakeFiles/query_qd_determinism_test.dir/query/qd_determinism_test.cc.o.d"
  "query_qd_determinism_test"
  "query_qd_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_qd_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
