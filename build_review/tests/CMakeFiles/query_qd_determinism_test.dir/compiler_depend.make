# Empty compiler generated dependencies file for query_qd_determinism_test.
# This may be replaced when dependencies are built.
