file(REMOVE_RECURSE
  "CMakeFiles/image_draw_test.dir/image/draw_test.cc.o"
  "CMakeFiles/image_draw_test.dir/image/draw_test.cc.o.d"
  "image_draw_test"
  "image_draw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_draw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
