# Empty dependencies file for image_draw_test.
# This may be replaced when dependencies are built.
