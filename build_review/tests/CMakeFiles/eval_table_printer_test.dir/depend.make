# Empty dependencies file for eval_table_printer_test.
# This may be replaced when dependencies are built.
