# Empty dependencies file for query_feedback_engine_test.
# This may be replaced when dependencies are built.
