file(REMOVE_RECURSE
  "CMakeFiles/query_feedback_engine_test.dir/query/feedback_engine_test.cc.o"
  "CMakeFiles/query_feedback_engine_test.dir/query/feedback_engine_test.cc.o.d"
  "query_feedback_engine_test"
  "query_feedback_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_feedback_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
