file(REMOVE_RECURSE
  "CMakeFiles/index_rstar_tree_test.dir/index/rstar_tree_test.cc.o"
  "CMakeFiles/index_rstar_tree_test.dir/index/rstar_tree_test.cc.o.d"
  "index_rstar_tree_test"
  "index_rstar_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_rstar_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
