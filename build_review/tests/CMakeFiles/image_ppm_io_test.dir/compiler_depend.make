# Empty compiler generated dependencies file for image_ppm_io_test.
# This may be replaced when dependencies are built.
