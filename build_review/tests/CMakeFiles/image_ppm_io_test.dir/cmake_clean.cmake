file(REMOVE_RECURSE
  "CMakeFiles/image_ppm_io_test.dir/image/ppm_io_test.cc.o"
  "CMakeFiles/image_ppm_io_test.dir/image/ppm_io_test.cc.o.d"
  "image_ppm_io_test"
  "image_ppm_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_ppm_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
