file(REMOVE_RECURSE
  "CMakeFiles/dataset_synthesizer_test.dir/dataset/synthesizer_test.cc.o"
  "CMakeFiles/dataset_synthesizer_test.dir/dataset/synthesizer_test.cc.o.d"
  "dataset_synthesizer_test"
  "dataset_synthesizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_synthesizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
