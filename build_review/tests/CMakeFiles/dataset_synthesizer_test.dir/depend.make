# Empty dependencies file for dataset_synthesizer_test.
# This may be replaced when dependencies are built.
