# Empty dependencies file for features_edge_structure_test.
# This may be replaced when dependencies are built.
