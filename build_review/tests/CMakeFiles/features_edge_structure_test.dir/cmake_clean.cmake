file(REMOVE_RECURSE
  "CMakeFiles/features_edge_structure_test.dir/features/edge_structure_test.cc.o"
  "CMakeFiles/features_edge_structure_test.dir/features/edge_structure_test.cc.o.d"
  "features_edge_structure_test"
  "features_edge_structure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_edge_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
