file(REMOVE_RECURSE
  "CMakeFiles/rfs_tree_test.dir/rfs/rfs_tree_test.cc.o"
  "CMakeFiles/rfs_tree_test.dir/rfs/rfs_tree_test.cc.o.d"
  "rfs_tree_test"
  "rfs_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfs_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
