# Empty compiler generated dependencies file for rfs_tree_test.
# This may be replaced when dependencies are built.
