file(REMOVE_RECURSE
  "CMakeFiles/query_qd_protocol_sweep_test.dir/query/qd_protocol_sweep_test.cc.o"
  "CMakeFiles/query_qd_protocol_sweep_test.dir/query/qd_protocol_sweep_test.cc.o.d"
  "query_qd_protocol_sweep_test"
  "query_qd_protocol_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_qd_protocol_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
