# Empty compiler generated dependencies file for query_qd_protocol_sweep_test.
# This may be replaced when dependencies are built.
