file(REMOVE_RECURSE
  "CMakeFiles/features_color_moments_test.dir/features/color_moments_test.cc.o"
  "CMakeFiles/features_color_moments_test.dir/features/color_moments_test.cc.o.d"
  "features_color_moments_test"
  "features_color_moments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_color_moments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
