# Empty dependencies file for features_color_moments_test.
# This may be replaced when dependencies are built.
