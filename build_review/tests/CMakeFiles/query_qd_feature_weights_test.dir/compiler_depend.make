# Empty compiler generated dependencies file for query_qd_feature_weights_test.
# This may be replaced when dependencies are built.
