# Empty dependencies file for eval_ground_truth_test.
# This may be replaced when dependencies are built.
