file(REMOVE_RECURSE
  "CMakeFiles/eval_ground_truth_test.dir/eval/ground_truth_test.cc.o"
  "CMakeFiles/eval_ground_truth_test.dir/eval/ground_truth_test.cc.o.d"
  "eval_ground_truth_test"
  "eval_ground_truth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_ground_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
