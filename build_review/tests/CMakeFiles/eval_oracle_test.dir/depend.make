# Empty dependencies file for eval_oracle_test.
# This may be replaced when dependencies are built.
