file(REMOVE_RECURSE
  "CMakeFiles/eval_oracle_test.dir/eval/oracle_test.cc.o"
  "CMakeFiles/eval_oracle_test.dir/eval/oracle_test.cc.o.d"
  "eval_oracle_test"
  "eval_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
