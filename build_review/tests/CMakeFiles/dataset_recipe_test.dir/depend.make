# Empty dependencies file for dataset_recipe_test.
# This may be replaced when dependencies are built.
