file(REMOVE_RECURSE
  "CMakeFiles/dataset_recipe_test.dir/dataset/recipe_test.cc.o"
  "CMakeFiles/dataset_recipe_test.dir/dataset/recipe_test.cc.o.d"
  "dataset_recipe_test"
  "dataset_recipe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_recipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
