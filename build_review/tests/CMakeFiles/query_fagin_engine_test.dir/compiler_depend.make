# Empty compiler generated dependencies file for query_fagin_engine_test.
# This may be replaced when dependencies are built.
