file(REMOVE_RECURSE
  "CMakeFiles/features_extractor_test.dir/features/extractor_test.cc.o"
  "CMakeFiles/features_extractor_test.dir/features/extractor_test.cc.o.d"
  "features_extractor_test"
  "features_extractor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
