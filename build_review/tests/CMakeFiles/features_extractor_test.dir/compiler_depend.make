# Empty compiler generated dependencies file for features_extractor_test.
# This may be replaced when dependencies are built.
