# Empty compiler generated dependencies file for features_wavelet_texture_test.
# This may be replaced when dependencies are built.
