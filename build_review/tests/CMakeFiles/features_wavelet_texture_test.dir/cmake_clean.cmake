file(REMOVE_RECURSE
  "CMakeFiles/features_wavelet_texture_test.dir/features/wavelet_texture_test.cc.o"
  "CMakeFiles/features_wavelet_texture_test.dir/features/wavelet_texture_test.cc.o.d"
  "features_wavelet_texture_test"
  "features_wavelet_texture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_wavelet_texture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
