file(REMOVE_RECURSE
  "CMakeFiles/dataset_catalog_test.dir/dataset/catalog_test.cc.o"
  "CMakeFiles/dataset_catalog_test.dir/dataset/catalog_test.cc.o.d"
  "dataset_catalog_test"
  "dataset_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
