# Empty dependencies file for dataset_catalog_test.
# This may be replaced when dependencies are built.
