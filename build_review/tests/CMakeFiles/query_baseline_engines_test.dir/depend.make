# Empty dependencies file for query_baseline_engines_test.
# This may be replaced when dependencies are built.
