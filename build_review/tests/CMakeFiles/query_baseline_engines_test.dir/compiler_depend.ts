# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for query_baseline_engines_test.
