file(REMOVE_RECURSE
  "CMakeFiles/query_baseline_engines_test.dir/query/baseline_engines_test.cc.o"
  "CMakeFiles/query_baseline_engines_test.dir/query/baseline_engines_test.cc.o.d"
  "query_baseline_engines_test"
  "query_baseline_engines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_baseline_engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
