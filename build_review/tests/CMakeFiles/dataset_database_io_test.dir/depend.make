# Empty dependencies file for dataset_database_io_test.
# This may be replaced when dependencies are built.
