# Empty dependencies file for bench_engines_comparison.
# This may be replaced when dependencies are built.
