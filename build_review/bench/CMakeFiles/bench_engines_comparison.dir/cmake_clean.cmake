file(REMOVE_RECURSE
  "CMakeFiles/bench_engines_comparison.dir/bench_engines_comparison.cc.o"
  "CMakeFiles/bench_engines_comparison.dir/bench_engines_comparison.cc.o.d"
  "bench_engines_comparison"
  "bench_engines_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engines_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
