# Empty dependencies file for bench_rfs_build.
# This may be replaced when dependencies are built.
