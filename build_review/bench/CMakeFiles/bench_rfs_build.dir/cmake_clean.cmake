file(REMOVE_RECURSE
  "CMakeFiles/bench_rfs_build.dir/bench_rfs_build.cc.o"
  "CMakeFiles/bench_rfs_build.dir/bench_rfs_build.cc.o.d"
  "bench_rfs_build"
  "bench_rfs_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rfs_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
