file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_9_qualitative.dir/bench_fig4_9_qualitative.cc.o"
  "CMakeFiles/bench_fig4_9_qualitative.dir/bench_fig4_9_qualitative.cc.o.d"
  "bench_fig4_9_qualitative"
  "bench_fig4_9_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_9_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
