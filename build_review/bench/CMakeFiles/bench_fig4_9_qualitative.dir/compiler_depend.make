# Empty compiler generated dependencies file for bench_fig4_9_qualitative.
# This may be replaced when dependencies are built.
