# Empty dependencies file for bench_ablation_user_noise.
# This may be replaced when dependencies are built.
