file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_user_noise.dir/bench_ablation_user_noise.cc.o"
  "CMakeFiles/bench_ablation_user_noise.dir/bench_ablation_user_noise.cc.o.d"
  "bench_ablation_user_noise"
  "bench_ablation_user_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_user_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
