# Empty compiler generated dependencies file for bench_ablation_feature_weights.
# This may be replaced when dependencies are built.
