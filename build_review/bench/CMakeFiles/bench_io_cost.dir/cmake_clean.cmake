file(REMOVE_RECURSE
  "CMakeFiles/bench_io_cost.dir/bench_io_cost.cc.o"
  "CMakeFiles/bench_io_cost.dir/bench_io_cost.cc.o.d"
  "bench_io_cost"
  "bench_io_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
