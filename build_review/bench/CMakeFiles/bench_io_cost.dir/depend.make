# Empty dependencies file for bench_io_cost.
# This may be replaced when dependencies are built.
