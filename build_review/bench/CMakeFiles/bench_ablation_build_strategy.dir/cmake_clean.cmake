file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_build_strategy.dir/bench_ablation_build_strategy.cc.o"
  "CMakeFiles/bench_ablation_build_strategy.dir/bench_ablation_build_strategy.cc.o.d"
  "bench_ablation_build_strategy"
  "bench_ablation_build_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_build_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
