# Empty compiler generated dependencies file for bench_fig11_iteration_time.
# This may be replaced when dependencies are built.
