# Empty compiler generated dependencies file for bench_fig1_pca.
# This may be replaced when dependencies are built.
