file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pca.dir/bench_fig1_pca.cc.o"
  "CMakeFiles/bench_fig1_pca.dir/bench_fig1_pca.cc.o.d"
  "bench_fig1_pca"
  "bench_fig1_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
