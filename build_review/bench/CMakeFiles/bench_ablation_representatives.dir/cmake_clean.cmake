file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_representatives.dir/bench_ablation_representatives.cc.o"
  "CMakeFiles/bench_ablation_representatives.dir/bench_ablation_representatives.cc.o.d"
  "bench_ablation_representatives"
  "bench_ablation_representatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_representatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
