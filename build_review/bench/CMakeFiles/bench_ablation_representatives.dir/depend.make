# Empty dependencies file for bench_ablation_representatives.
# This may be replaced when dependencies are built.
