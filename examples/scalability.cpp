// Demonstrates the paper's scalability argument (Section 6, "More
// Scalable"): relevance-feedback processing needs only the RFS structure —
// a small fraction of the database — so it can run on client machines,
// while the server only executes the final localized k-NN subqueries.
//
// This example builds a database, serializes the RFS structure (the
// "client download"), reports its size relative to the full database, and
// runs a feedback session entirely against the deserialized client copy.
//
// Run:  ./build/examples/scalability [images]

#include <cstdio>
#include <cstdlib>

#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/metrics.h"
#include "qdcbir/eval/session_runner.h"
#include "qdcbir/rfs/rfs_builder.h"
#include "qdcbir/rfs/rfs_serialization.h"

using namespace qdcbir;

int main(int argc, char** argv) {
  const std::size_t total_images =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 6000;

  StatusOr<Catalog> catalog = Catalog::Build();
  if (!catalog.ok()) return 1;
  SynthesizerOptions synth;
  synth.total_images = total_images;
  synth.extract_viewpoint_channels = false;
  std::printf("synthesizing %zu images...\n", total_images);
  StatusOr<ImageDatabase> db = DatabaseSynthesizer::Synthesize(*catalog, synth);
  if (!db.ok()) return 1;

  StatusOr<RfsTree> server_rfs =
      RfsBuilder::Build(db->features(), RfsBuildOptions{});
  if (!server_rfs.ok()) return 1;

  // "Download" the RFS structure to the client. The paper's scalability
  // claim is about *image data*: feedback needs only the representative
  // images (about 5% of the collection), so their pixels plus the RFS index
  // are all a client must hold.
  const std::string rfs_blob = RfsSerializer::Serialize(*server_rfs);
  const RfsTree::Stats stats = server_rfs->ComputeStats();
  const double bytes_per_image =
      static_cast<double>(db->image_width()) * db->image_height() * 3;
  const double full_pixels_mb = bytes_per_image * db->size() / 1e6;
  const double rep_pixels_mb =
      bytes_per_image * stats.leaf_representatives / 1e6;
  std::printf(
      "\nfull image collection:          %.1f MB of pixels (%zu images)\n"
      "client representative images:   %.1f MB of pixels (%zu images, "
      "%.1f%%)\n"
      "client RFS index structure:     %.1f MB\n",
      full_pixels_mb, db->size(), rep_pixels_mb, stats.leaf_representatives,
      100.0 * stats.representative_fraction, rfs_blob.size() / 1e6);

  // The client runs the interactive session on its own copy.
  StatusOr<RfsTree> client_rfs = RfsSerializer::Deserialize(rfs_blob);
  if (!client_rfs.ok()) return 1;

  StatusOr<QueryGroundTruth> gt =
      BuildGroundTruth(*db, catalog->FindQuery("car").value());
  if (!gt.ok()) return 1;

  ProtocolOptions protocol;
  protocol.seed = 3;
  StatusOr<RunOutcome> outcome =
      SessionRunner::RunQd(*client_rfs, *gt, QdOptions{}, protocol);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "\nclient-side \"car\" session: precision %.2f, GTIR %.2f\n"
      "feedback rounds touched %zu tree nodes; the final round issued %zu "
      "localized k-NN subqueries over %zu candidate images (vs %zu images "
      "scanned per round by a traditional global-kNN engine).\n",
      outcome->final_precision, outcome->final_gtir,
      outcome->qd_stats.nodes_touched,
      outcome->qd_stats.localized_subqueries,
      outcome->qd_stats.knn_candidates, db->size());
  return 0;
}
