// Demonstrates the paper's Section 6 future-work extension: letting the
// user declare which feature group matters most ("the user may define
// color as the most important feature in the retrieval procedure").
//
// The example runs the same "laptop" Query Decomposition session three
// times — unweighted, with the edge-structure group emphasized (laptop
// variants differ by background complexity, which edges carry), and with
// the texture group emphasized — and compares the retrieval quality.
//
// Run:  ./build/examples/feature_importance [images]

#include <cstdio>
#include <cstdlib>

#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/session_runner.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/rfs/rfs_builder.h"

using namespace qdcbir;

int main(int argc, char** argv) {
  const std::size_t total_images =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 6000;

  StatusOr<Catalog> catalog = Catalog::Build();
  if (!catalog.ok()) return 1;
  SynthesizerOptions synth;
  synth.total_images = total_images;
  synth.extract_viewpoint_channels = false;
  std::printf("synthesizing %zu images...\n", total_images);
  StatusOr<ImageDatabase> db = DatabaseSynthesizer::Synthesize(*catalog, synth);
  if (!db.ok()) return 1;
  StatusOr<RfsTree> rfs = RfsBuilder::Build(db->features(), RfsBuildOptions{});
  if (!rfs.ok()) return 1;

  StatusOr<QueryGroundTruth> gt =
      BuildGroundTruth(*db, catalog->FindQuery("laptop").value());
  if (!gt.ok()) return 1;
  std::printf(
      "query \"laptop\": %zu relevant images; the two sub-concepts differ "
      "by background complexity (an edge/texture property).\n\n",
      gt->size());

  struct Scheme {
    const char* name;
    std::vector<double> weights;
  };
  const Scheme schemes[] = {
      {"uniform (paper default)", {}},
      {"edge structure 4x", MakeGroupWeights(1.0, 1.0, 4.0)},
      {"texture 4x (mismatched)", MakeGroupWeights(1.0, 4.0, 1.0)},
  };

  for (const Scheme& scheme : schemes) {
    double precision = 0.0, gtir = 0.0;
    const int seeds = 3;
    for (int seed = 1; seed <= seeds; ++seed) {
      QdOptions options;
      options.feature_weights = scheme.weights;
      ProtocolOptions protocol;
      protocol.seed = seed;
      StatusOr<RunOutcome> outcome =
          SessionRunner::RunQd(*rfs, *gt, options, protocol);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
        return 1;
      }
      precision += outcome->final_precision;
      gtir += outcome->final_gtir;
    }
    std::printf("  %-26s precision %.2f, GTIR %.2f\n", scheme.name,
                precision / seeds, gtir / seeds);
  }
  std::printf(
      "\nWeights reshape the final ranking only; discovery (GTIR) is driven "
      "by the RFS representatives. When the localized subclusters are pure, "
      "all schemes tie — differences appear when a leaf mixes concepts (see "
      "bench_ablation_feature_weights for a full sweep).\n");
  return 0;
}
