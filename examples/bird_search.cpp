// Reproduces the scenario of the paper's Figure 3: a user searches for
// "bird"; query decomposition discovers the eagle, sparrow, and owl
// subclusters as independent subqueries, and the final result panel is
// presented in groups ordered by ranking score (the paper notes the owl
// group ranks last because it attracts more less-relevant images).
//
// Run:  ./build/examples/bird_search [images] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/metrics.h"
#include "qdcbir/eval/oracle.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

using namespace qdcbir;

int main(int argc, char** argv) {
  const std::size_t total_images =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 6000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

  StatusOr<Catalog> catalog = Catalog::Build();
  if (!catalog.ok()) return 1;
  SynthesizerOptions synth;
  synth.total_images = total_images;
  synth.extract_viewpoint_channels = false;
  std::printf("synthesizing %zu images...\n", total_images);
  StatusOr<ImageDatabase> db = DatabaseSynthesizer::Synthesize(*catalog, synth);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  RfsBuildOptions build;
  build.tree.max_entries = 100;
  build.tree.min_entries = 70;
  // The paper's 5% representatives are calibrated for 15k images; below
  // that scale, keep roughly three representatives per sub-concept so every
  // subcluster stays discoverable.
  build.representatives.fraction = std::max(
      0.05, 3.0 * static_cast<double>(catalog->subconcepts().size()) /
                static_cast<double>(total_images));
  StatusOr<RfsTree> rfs = RfsBuilder::Build(db->features(), build);
  if (!rfs.ok()) {
    std::fprintf(stderr, "%s\n", rfs.status().ToString().c_str());
    return 1;
  }

  StatusOr<QueryGroundTruth> gt =
      BuildGroundTruth(*db, catalog->FindQuery("bird").value());
  if (!gt.ok()) return 1;

  // Drive the session the way the paper's Figure 2/3 walk-through does:
  // the oracle stands in for the user, re-marking relevant representatives
  // at every level of the descent.
  QdOptions options;
  options.seed = seed;
  QdSession session(&*rfs, options);
  OracleUser oracle;

  auto display = session.Start();
  for (int round = 1; round <= 3; ++round) {
    std::vector<ImageId> picks;
    for (int browse = 0; browse < 40 && picks.size() < 8; ++browse) {
      std::vector<ImageId> flat;
      for (const DisplayGroup& g : display) {
        flat.insert(flat.end(), g.images.begin(), g.images.end());
      }
      for (const ImageId id :
           oracle.SelectRelevant(flat, *gt, 8 - picks.size())) {
        if (std::find(picks.begin(), picks.end(), id) == picks.end()) {
          picks.push_back(id);
        }
      }
      if (picks.size() >= 8) break;
      display = session.Resample();
    }
    std::printf("round %d: user marked %zu relevant representatives:", round,
                picks.size());
    for (const ImageId id : picks) {
      std::printf(" %s", db->LabelOf(id).c_str());
    }
    std::printf("\n         active subqueries after feedback: ");
    StatusOr<std::vector<DisplayGroup>> next = session.Feedback(picks);
    if (!next.ok()) {
      std::fprintf(stderr, "%s\n", next.status().ToString().c_str());
      return 1;
    }
    display = std::move(next).value();
    std::printf("%zu\n", session.frontier().size());
  }

  StatusOr<QdResult> result = session.Finalize(gt->size());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nfinal result: %zu images in %zu groups "
              "(groups ordered by ranking score):\n",
              result->TotalImages(), result->groups.size());
  for (std::size_t g = 0; g < result->groups.size(); ++g) {
    const ResultGroup& group = result->groups[g];
    // Majority label of the group, as the paper names its panels.
    std::map<std::string, int> labels;
    for (const KnnMatch& m : group.images) labels[db->LabelOf(m.id)] += 1;
    std::string majority;
    int best = 0;
    for (const auto& [label, count] : labels) {
      if (count > best) {
        best = count;
        majority = label;
      }
    }
    std::printf("  group %zu: \"%s\" — %zu images, ranking score %.2f\n",
                g + 1, majority.c_str(), group.images.size(),
                group.ranking_score);
  }

  const std::vector<ImageId> flat = result->Flatten();
  std::printf("\nprecision %.2f, GTIR %.2f over %zu ground-truth birds\n",
              ComputePrecisionRecall(flat, *gt).precision,
              ComputeGtir(flat, *gt), gt->size());
  return 0;
}
