// A terminal stand-in for the paper's ImageGrouper-based GUI (Section 4):
// browse representative images, mark the relevant ones by number, watch the
// query decompose, and retrieve the final grouped results.
//
// Commands at the prompt:
//   1 3 7        mark the displayed images #1, #3 and #7 as relevant and
//                advance one feedback round
//   r            "Random" button — re-roll the current display
//   f            finish: run the localized k-NN subqueries and show results
//   q            quit
//
// Run:  ./build/examples/interactive_cli [images]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

using namespace qdcbir;

namespace {

void ShowDisplay(const ImageDatabase& db,
                 const std::vector<DisplayGroup>& display) {
  int index = 1;
  for (const DisplayGroup& group : display) {
    std::printf("-- subquery node %u --\n", group.node);
    for (const ImageId id : group.images) {
      std::printf("  [%2d] %s\n", index++, db.LabelOf(id).c_str());
    }
  }
  std::printf("mark relevant numbers, 'r' for random, 'f' to finish, "
              "'q' to quit > ");
  std::fflush(stdout);
}

std::vector<ImageId> Flatten(const std::vector<DisplayGroup>& display) {
  std::vector<ImageId> flat;
  for (const DisplayGroup& g : display) {
    flat.insert(flat.end(), g.images.begin(), g.images.end());
  }
  return flat;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t total_images =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4000;

  StatusOr<Catalog> catalog = Catalog::Build();
  if (!catalog.ok()) return 1;
  SynthesizerOptions synth;
  synth.total_images = total_images;
  synth.extract_viewpoint_channels = false;
  std::printf("building a %zu-image database (a few seconds)...\n",
              total_images);
  StatusOr<ImageDatabase> db = DatabaseSynthesizer::Synthesize(*catalog, synth);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  StatusOr<RfsTree> rfs = RfsBuilder::Build(db->features(), RfsBuildOptions{});
  if (!rfs.ok()) {
    std::fprintf(stderr, "%s\n", rfs.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "ready: %zu images, RFS height %d, %zu representatives.\n"
      "You are the relevance-feedback user. Labels reveal the ground truth "
      "(the paper's users saw pixels instead).\n\n",
      db->size(), rfs->height(), rfs->CountLeafRepresentatives());

  QdSession session(&*rfs, QdOptions{});
  auto display = session.Start();
  ShowDisplay(*db, display);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "q") return 0;
    if (line == "r") {
      display = session.Resample();
      ShowDisplay(*db, display);
      continue;
    }
    if (line == "f") {
      StatusOr<QdResult> result = session.Finalize(24);
      if (!result.ok()) {
        std::printf("cannot finish yet: %s\n",
                    result.status().message().c_str());
        ShowDisplay(*db, display);
        continue;
      }
      std::printf("\nfinal results (%zu groups):\n", result->groups.size());
      for (const ResultGroup& group : result->groups) {
        std::printf("-- group from subcluster %u (score %.2f) --\n",
                    group.leaf, group.ranking_score);
        for (const KnnMatch& m : group.images) {
          std::printf("   %s\n", db->LabelOf(m.id).c_str());
        }
      }
      return 0;
    }

    // Parse marked numbers.
    std::istringstream in(line);
    const std::vector<ImageId> flat = Flatten(display);
    std::vector<ImageId> picks;
    int number = 0;
    while (in >> number) {
      if (number >= 1 && number <= static_cast<int>(flat.size())) {
        picks.push_back(flat[static_cast<std::size_t>(number - 1)]);
      }
    }
    StatusOr<std::vector<DisplayGroup>> next = session.Feedback(picks);
    if (!next.ok()) {
      std::printf("feedback failed: %s\n", next.status().message().c_str());
    } else {
      display = std::move(next).value();
      std::printf("\nround %d — %zu active subquer%s\n", session.round(),
                  session.frontier().size(),
                  session.frontier().size() == 1 ? "y" : "ies");
    }
    ShowDisplay(*db, display);
  }
  return 0;
}
