// Quickstart: build a small synthetic image database, construct the RFS
// structure, run one Query Decomposition session with a simulated user
// searching for "bird", and compare against the Multiple Viewpoints
// baseline.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/metrics.h"
#include "qdcbir/eval/session_runner.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

using namespace qdcbir;

int main() {
  // 1. Catalog: ~60 categories, including the paper's evaluation concepts.
  CatalogOptions catalog_options;
  catalog_options.num_categories = 60;
  StatusOr<Catalog> catalog = Catalog::Build(catalog_options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // 2. Database: 3,000 synthetic images, 37-D features per image.
  SynthesizerOptions synth_options;
  synth_options.total_images = 3000;
  StatusOr<ImageDatabase> db =
      DatabaseSynthesizer::Synthesize(*catalog, synth_options);
  if (!db.ok()) {
    std::fprintf(stderr, "synthesize: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %zu images, %zu-D features, %zu categories\n",
              db->size(), db->feature_dim(), catalog->categories().size());

  // 3. RFS structure: R*-tree + representative images (~5%%).
  RfsBuildOptions build_options;
  build_options.tree.max_entries = 60;
  build_options.tree.min_entries = 24;
  StatusOr<RfsTree> rfs = RfsBuilder::Build(db->features(), build_options);
  if (!rfs.ok()) {
    std::fprintf(stderr, "rfs: %s\n", rfs.status().ToString().c_str());
    return 1;
  }
  const RfsTree::Stats stats = rfs->ComputeStats();
  std::printf(
      "RFS tree: height %d, %zu nodes (%zu leaves), %zu representatives "
      "(%.1f%% of the database)\n",
      stats.height, stats.node_count, stats.leaf_count,
      stats.leaf_representatives, 100.0 * stats.representative_fraction);

  // 4. Search for "bird" (ground truth: eagle + owl + sparrow clusters).
  StatusOr<QueryConceptSpec> query = catalog->FindQuery("bird");
  if (!query.ok()) return 1;
  StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, *query);
  if (!gt.ok()) {
    std::fprintf(stderr, "ground truth: %s\n", gt.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery \"bird\": %zu relevant images in %zu sub-concepts\n",
              gt->size(), gt->subconcept_images.size());

  ProtocolOptions protocol;
  protocol.seed = 42;

  // 4a. Query Decomposition.
  StatusOr<RunOutcome> qd =
      SessionRunner::RunQd(*rfs, *gt, QdOptions{}, protocol);
  if (!qd.ok()) {
    std::fprintf(stderr, "qd run: %s\n", qd.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQuery Decomposition:\n");
  std::printf("  precision %.2f, GTIR %.2f\n", qd->final_precision,
              qd->final_gtir);
  std::printf("  %zu localized subqueries, %zu boundary expansions\n",
              qd->qd_stats.localized_subqueries,
              qd->qd_stats.boundary_expansions);
  for (const ResultGroup& group : qd->qd_result.groups) {
    std::printf("  group (leaf %u, %zu relevant marks): %zu results, "
                "ranking score %.2f\n",
                group.leaf, group.relevant_count, group.images.size(),
                group.ranking_score);
  }

  // 4b. Multiple Viewpoints baseline on the same query.
  MvEngine mv(&*db);
  StatusOr<RunOutcome> mv_run = SessionRunner::RunEngine(mv, *gt, protocol);
  if (!mv_run.ok()) {
    std::fprintf(stderr, "mv run: %s\n", mv_run.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMultiple Viewpoints baseline:\n");
  std::printf("  precision %.2f, GTIR %.2f\n", mv_run->final_precision,
              mv_run->final_gtir);

  std::printf("\nQD covered %.0f%% of the bird sub-concepts; MV covered "
              "%.0f%%.\n",
              100.0 * qd->final_gtir, 100.0 * mv_run->final_gtir);
  return 0;
}
