// Extended comparison across the full relevance-feedback family the paper
// surveys in Section 2: Query Decomposition against Multiple Viewpoints,
// Query Point Movement (MindReader), MARS multipoint refinement, a
// Qcluster-style disjunctive engine, and a Fagin-style top-k merger.
//
// The paper compares only against MV (its strongest single-neighborhood
// contender); this table situates QD in the whole design space and verifies
// its §2 narrative: clustering-based baselines (Qcluster) beat pure
// centroid movement on scattered concepts, but only decomposition reaches
// every relevant subcluster with independent result quotas.
//
// Flags: --images=15000 --seeds=3 --cache=bench_cache

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/query/fagin_engine.h"
#include "qdcbir/query/mars_engine.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/query/qcluster_engine.h"
#include "qdcbir/query/qpm_engine.h"

namespace qdcbir {
namespace bench {
namespace {

std::unique_ptr<FeedbackEngine> MakeEngine(const std::string& name,
                                           const ImageDatabase* db) {
  if (name == "mv") return std::make_unique<MvEngine>(db);
  if (name == "qpm") return std::make_unique<QpmEngine>(db);
  if (name == "mars") return std::make_unique<MarsEngine>(db);
  if (name == "qcluster") return std::make_unique<QclusterEngine>(db);
  if (name == "fagin") return std::make_unique<FaginEngine>(db);
  return nullptr;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 15000));
  const int seeds = static_cast<int>(flags.Int("seeds", 3));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Extended comparison — the Section 2 relevance-feedback "
              "family",
              "Average precision / GTIR over the 11 evaluation queries and " +
                  std::to_string(seeds) + " users; per-round database scans "
                  "counted as the efficiency proxy.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/true, cache);
  if (!db.ok()) return 1;
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
  if (!rfs.ok()) return 1;

  TablePrinter table({"Engine", "Precision", "GTIR",
                      "DB items scanned / session"});

  // Query Decomposition first.
  {
    double precision = 0, gtir = 0, scanned = 0;
    int runs = 0;
    for (const QueryConceptSpec& spec : db->catalog().queries()) {
      StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
      if (!gt.ok()) continue;
      for (int seed = 1; seed <= seeds; ++seed) {
        StatusOr<RunOutcome> outcome = SessionRunner::RunQd(
            *rfs, *gt, QdOptions{}, PaperProtocol(seed));
        if (!outcome.ok()) continue;
        precision += outcome->final_precision;
        gtir += outcome->final_gtir;
        scanned += static_cast<double>(outcome->qd_stats.knn_candidates);
        ++runs;
      }
    }
    if (runs > 0) {
      table.AddRow({"qd (this paper)", TablePrinter::Num(precision / runs),
                    TablePrinter::Num(gtir / runs),
                    TablePrinter::Num(scanned / runs, 0)});
    }
  }

  for (const char* name : {"mv", "qpm", "mars", "qcluster", "fagin"}) {
    double precision = 0, gtir = 0, scanned = 0;
    int runs = 0;
    for (const QueryConceptSpec& spec : db->catalog().queries()) {
      StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
      if (!gt.ok()) continue;
      for (int seed = 1; seed <= seeds; ++seed) {
        std::unique_ptr<FeedbackEngine> engine = MakeEngine(name, &*db);
        ProtocolOptions protocol = PaperProtocol(seed);
        StatusOr<RunOutcome> outcome =
            SessionRunner::RunEngine(*engine, *gt, protocol);
        if (!outcome.ok()) continue;
        precision += outcome->final_precision;
        gtir += outcome->final_gtir;
        scanned +=
            static_cast<double>(outcome->global_stats.candidates_scanned);
        ++runs;
      }
    }
    if (runs > 0) {
      table.AddRow({name, TablePrinter::Num(precision / runs),
                    TablePrinter::Num(gtir / runs),
                    TablePrinter::Num(scanned / runs, 0)});
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nExpected shape: QD leads on GTIR (independent subqueries reach "
      "every relevant subcluster) at a fraction of the scan cost; the "
      "disjunctive/cluster-aware baselines (qcluster, mars) sit between "
      "pure centroid movement (qpm) and QD on scattered concepts.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
