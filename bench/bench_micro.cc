// Micro-benchmarks (google-benchmark) of the library's hot paths: distance
// kernels, brute-force vs R*-tree k-NN, k-means, feature extraction, and
// the Haar transform. These quantify the primitives behind Figures 10-11.

#include <benchmark/benchmark.h>

#include "qdcbir/cluster/kmeans.h"
#include "qdcbir/core/distance.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/dataset/recipe.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/features/wavelet_texture.h"
#include "qdcbir/index/rstar_tree.h"
#include "qdcbir/index/str_bulk_load.h"
#include "qdcbir/query/knn.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> RandomPoints(std::size_t n, std::size_t dim,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.Gaussian();
    out.push_back(std::move(v));
  }
  return out;
}

void BM_SquaredL2_37d(benchmark::State& state) {
  const auto points = RandomPoints(2, kPaperFeatureDim, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(points[0], points[1]));
  }
}
BENCHMARK(BM_SquaredL2_37d);

void BM_BruteForceKnn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto table = RandomPoints(n, kPaperFeatureDim, 2);
  const auto query = RandomPoints(1, kPaperFeatureDim, 3)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceKnn(table, query, 20));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BruteForceKnn)->Arg(1000)->Arg(5000)->Arg(15000);

void BM_RStarTreeKnn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto table = RandomPoints(n, kPaperFeatureDim, 4);
  std::vector<ImageId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<ImageId>(i);
  RStarTreeOptions options;
  options.max_entries = 100;
  options.min_entries = 40;
  const RStarTree tree =
      BulkLoadRStarTree(table, ids, kPaperFeatureDim, options).value();
  const auto query = RandomPoints(1, kPaperFeatureDim, 5)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KnnSearch(query, 20));
  }
}
BENCHMARK(BM_RStarTreeKnn)->Arg(1000)->Arg(5000)->Arg(15000);

void BM_RStarTreeInsert(benchmark::State& state) {
  const auto points = RandomPoints(2000, 8, 6);
  for (auto _ : state) {
    RStarTreeOptions options;
    options.max_entries = 32;
    options.min_entries = 13;
    RStarTree tree(8, options);
    for (std::size_t i = 0; i < points.size(); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(points[i], static_cast<ImageId>(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RStarTreeInsert);

void BM_KMeans(benchmark::State& state) {
  const auto points = RandomPoints(1000, kPaperFeatureDim, 7);
  for (auto _ : state) {
    KMeansOptions options;
    options.k = static_cast<int>(state.range(0));
    options.max_iterations = 12;
    benchmark::DoNotOptimize(RunKMeans(points, options));
  }
}
BENCHMARK(BM_KMeans)->Arg(8)->Arg(32);

void BM_FeatureExtraction(benchmark::State& state) {
  SubConceptRecipe recipe;
  recipe.texture = TextureKind::kStripes;
  Rng rng(8);
  const Image image = RenderRecipe(recipe, 48, 48, rng);
  const FeatureExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(image));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_RenderRecipe(benchmark::State& state) {
  SubConceptRecipe recipe;
  recipe.background = BackgroundKind::kNoisy;
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RenderRecipe(recipe, 48, 48, rng));
  }
}
BENCHMARK(BM_RenderRecipe);

void BM_HaarTransform(benchmark::State& state) {
  Rng rng(10);
  std::vector<double> input(48 * 48);
  for (double& v : input) v = rng.UniformDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarTransform2D(input, 48, 48));
  }
}
BENCHMARK(BM_HaarTransform);

}  // namespace
}  // namespace qdcbir

BENCHMARK_MAIN();
