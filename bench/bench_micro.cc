// Micro-benchmarks (google-benchmark) of the library's hot paths: distance
// kernels, brute-force vs R*-tree k-NN, k-means, feature extraction, and
// the Haar transform. These quantify the primitives behind Figures 10-11.
// The *_Threads benchmarks sweep the thread pool across 1/2/4/8 lanes to
// show the scaling of the parallel execution layer.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/profiler.h"
#include "qdcbir/obs/trace.h"

#include "qdcbir/cache/cache_manager.h"
#include "qdcbir/cluster/kmeans.h"
#include "qdcbir/core/distance.h"
#include "qdcbir/core/distance_kernels.h"
#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/database_io.h"
#include "qdcbir/dataset/recipe.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/features/wavelet_texture.h"
#include "qdcbir/index/rstar_tree.h"
#include "qdcbir/index/str_bulk_load.h"
#include "qdcbir/query/knn.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> RandomPoints(std::size_t n, std::size_t dim,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.Gaussian();
    out.push_back(std::move(v));
  }
  return out;
}

void BM_SquaredL2_37d(benchmark::State& state) {
  const auto points = RandomPoints(2, kPaperFeatureDim, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(points[0], points[1]));
  }
}
BENCHMARK(BM_SquaredL2_37d);

// --- Batched distance-kernel sweeps (docs/simd.md) --------------------
//
// BM_WeightedL2PerVector is the pre-blocking baseline the ISSUE's >=2x
// speedup target is measured against; the *_Blocked variants run the same
// scan through the tile kernels at an explicit SIMD level, so one JSON
// export (CI's bench-kernels artifact) captures scalar-vs-avx2 side by
// side regardless of the host's dispatch choice.

// 4000 x 37 doubles (~1.2 MB) stays L2-resident, so the sweep measures
// kernel arithmetic rather than DRAM bandwidth (a 40k-vector table makes
// every variant converge on the same memory-bound throughput).
constexpr std::size_t kKernelBenchTable = 4000;

void BM_WeightedL2PerVector(benchmark::State& state) {
  const auto table = RandomPoints(kKernelBenchTable, kPaperFeatureDim, 21);
  const auto query = RandomPoints(1, kPaperFeatureDim, 22)[0];
  std::vector<double> weights(kPaperFeatureDim);
  Rng rng(23);
  for (double& w : weights) w = rng.UniformDouble(0.0, 2.0);
  const WeightedL2Distance metric(weights);
  double sink = 0.0;
  for (auto _ : state) {
    for (const FeatureVector& v : table) sink += metric.Compare(v, query);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kKernelBenchTable));
}
BENCHMARK(BM_WeightedL2PerVector);

void BM_SquaredL2PerVector(benchmark::State& state) {
  const auto table = RandomPoints(kKernelBenchTable, kPaperFeatureDim, 21);
  const auto query = RandomPoints(1, kPaperFeatureDim, 22)[0];
  double sink = 0.0;
  for (auto _ : state) {
    for (const FeatureVector& v : table) sink += SquaredL2(v, query);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kKernelBenchTable));
}
BENCHMARK(BM_SquaredL2PerVector);

void KernelSweep(benchmark::State& state, SimdLevel level, bool weighted) {
  const DistanceKernels& kernels = KernelsFor(level);
  if (level == SimdLevel::kAvx2 && kernels.level != SimdLevel::kAvx2) {
    state.SkipWithError("host CPU lacks AVX2+FMA");
    return;
  }
  const auto points = RandomPoints(kKernelBenchTable, kPaperFeatureDim, 21);
  const FeatureBlockTable table(points);
  const auto query = RandomPoints(1, kPaperFeatureDim, 22)[0];
  std::vector<double> weights(kPaperFeatureDim);
  Rng rng(23);
  for (double& w : weights) w = rng.UniformDouble(0.0, 2.0);
  double out[kBlockWidth];
  double sink = 0.0;
  for (auto _ : state) {
    for (std::size_t b = 0; b < table.num_blocks(); ++b) {
      if (weighted) {
        kernels.weighted_l2(table.block(b), query.data(), weights.data(),
                            table.dim(), out);
      } else {
        kernels.squared_l2(table.block(b), query.data(), table.dim(), out);
      }
      sink += out[0];
    }
    AddBlockBatches(table.num_blocks());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kKernelBenchTable));
}

void BM_WeightedL2BlockedScalar(benchmark::State& state) {
  KernelSweep(state, SimdLevel::kScalar, /*weighted=*/true);
}
BENCHMARK(BM_WeightedL2BlockedScalar);

void BM_WeightedL2BlockedAvx2(benchmark::State& state) {
  KernelSweep(state, SimdLevel::kAvx2, /*weighted=*/true);
}
BENCHMARK(BM_WeightedL2BlockedAvx2);

void BM_SquaredL2BlockedScalar(benchmark::State& state) {
  KernelSweep(state, SimdLevel::kScalar, /*weighted=*/false);
}
BENCHMARK(BM_SquaredL2BlockedScalar);

void BM_SquaredL2BlockedAvx2(benchmark::State& state) {
  KernelSweep(state, SimdLevel::kAvx2, /*weighted=*/false);
}
BENCHMARK(BM_SquaredL2BlockedAvx2);

void BM_GatherTile(benchmark::State& state) {
  const auto points = RandomPoints(kKernelBenchTable, kPaperFeatureDim, 21);
  const FeatureBlockTable table(points);
  std::vector<ImageId> ids(kBlockWidth);
  Rng rng(29);
  for (ImageId& id : ids) {
    id = static_cast<ImageId>(rng.UniformInt(kKernelBenchTable));
  }
  std::vector<double> tile(table.dim() * kBlockWidth);
  for (auto _ : state) {
    table.GatherTile(ids.data(), ids.size(), tile.data());
    benchmark::DoNotOptimize(tile.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBlockWidth));
}
BENCHMARK(BM_GatherTile);

void BM_BruteForceKnn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto table = RandomPoints(n, kPaperFeatureDim, 2);
  const auto query = RandomPoints(1, kPaperFeatureDim, 3)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceKnn(table, query, 20));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BruteForceKnn)->Arg(1000)->Arg(5000)->Arg(15000);

void BM_RStarTreeKnn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto table = RandomPoints(n, kPaperFeatureDim, 4);
  std::vector<ImageId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<ImageId>(i);
  RStarTreeOptions options;
  options.max_entries = 100;
  options.min_entries = 40;
  const RStarTree tree =
      BulkLoadRStarTree(table, ids, kPaperFeatureDim, options).value();
  const auto query = RandomPoints(1, kPaperFeatureDim, 5)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KnnSearch(query, 20));
  }
}
BENCHMARK(BM_RStarTreeKnn)->Arg(1000)->Arg(5000)->Arg(15000);

void BM_RStarTreeInsert(benchmark::State& state) {
  const auto points = RandomPoints(2000, 8, 6);
  for (auto _ : state) {
    RStarTreeOptions options;
    options.max_entries = 32;
    options.min_entries = 13;
    RStarTree tree(8, options);
    for (std::size_t i = 0; i < points.size(); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(points[i], static_cast<ImageId>(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RStarTreeInsert);

void BM_KMeans(benchmark::State& state) {
  const auto points = RandomPoints(1000, kPaperFeatureDim, 7);
  for (auto _ : state) {
    KMeansOptions options;
    options.k = static_cast<int>(state.range(0));
    options.max_iterations = 12;
    benchmark::DoNotOptimize(RunKMeans(points, options));
  }
}
BENCHMARK(BM_KMeans)->Arg(8)->Arg(32);

void BM_FeatureExtraction(benchmark::State& state) {
  SubConceptRecipe recipe;
  recipe.texture = TextureKind::kStripes;
  Rng rng(8);
  const Image image = RenderRecipe(recipe, 48, 48, rng);
  const FeatureExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(image));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_RenderRecipe(benchmark::State& state) {
  SubConceptRecipe recipe;
  recipe.background = BackgroundKind::kNoisy;
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RenderRecipe(recipe, 48, 48, rng));
  }
}
BENCHMARK(BM_RenderRecipe);

/// Multimodal points (well-separated Gaussian modes) so relevance feedback
/// decomposes into many neighborhoods; unimodal data would collapse the QD
/// session into a single localized subquery and leave nothing to fan out.
std::vector<FeatureVector> ClusteredPoints(std::size_t n, std::size_t dim,
                                           std::size_t modes,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> centers;
  for (std::size_t m = 0; m < modes; ++m) {
    FeatureVector c(dim);
    for (std::size_t d = 0; d < dim; ++d) c[d] = 6.0 * rng.Gaussian();
    centers.push_back(std::move(c));
  }
  std::vector<FeatureVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FeatureVector& c = centers[i % modes];
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = c[d] + rng.Gaussian();
    out.push_back(std::move(v));
  }
  return out;
}

/// Shared RFS over multimodal random points for the thread-sweep
/// benchmarks; built once so every pool width measures the same structure.
const RfsTree& SweepRfs() {
  static const RfsTree* tree = [] {
    const auto points = ClusteredPoints(20000, kPaperFeatureDim, 24, 11);
    RfsBuildOptions options;
    options.tree.max_entries = 100;
    options.tree.min_entries = 40;
    options.representatives.fraction = 0.05;
    options.representatives.min_per_node = 3;
    return new RfsTree(RfsBuilder::Build(points, options).value());
  }();
  return *tree;
}

/// The localized-subquery stage: `QdSession::Finalize` fans one multipoint
/// k-NN per frontier leaf across the pool (~70 subqueries after the
/// scripted rounds below). The feedback rounds run once during setup —
/// `Finalize` is deterministic and repeatable, so only the final round is
/// inside the timed region.
void BM_QdLocalizedSubqueries_Threads(benchmark::State& state) {
  const RfsTree& rfs = SweepRfs();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  QdOptions options;
  options.seed = 42;
  options.display_size = 40;
  options.pool = &pool;
  QdSession session(&rfs, options);
  auto display = session.Start();
  for (int round = 0; round < 3; ++round) {
    std::vector<ImageId> picks;
    for (const DisplayGroup& group : display) {
      picks.insert(picks.end(), group.images.begin(), group.images.end());
    }
    auto next = session.Feedback(picks);
    if (!next.ok()) break;
    display = std::move(next).value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Finalize(200));
  }
  state.counters["subqueries"] = static_cast<double>(
      session.stats().localized_subqueries / state.iterations());
}
BENCHMARK(BM_QdLocalizedSubqueries_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The repeat-scan payoff of the result cache: the same scripted session
/// finalized over and over, uncached (arg 0) vs through a CacheManager
/// (arg 1). With the cache the first iteration computes and inserts; every
/// later one serves the finalized top-k (and, beneath it, the per-leaf
/// scans) from memory. Rankings are byte-identical either way — the
/// speedup is the whole point, and the cache hit/miss counters land in the
/// exported metrics snapshot ($QDCBIR_METRICS_JSON / the bench "obs" key).
void BM_QdFinalizeRepeat_Cache(benchmark::State& state) {
  const RfsTree& rfs = SweepRfs();
  ThreadPool pool(4);
  cache::CacheManager::Options cache_options;
  cache_options.budget_bytes = 64ull << 20;
  cache::CacheManager cache_manager(cache_options);
  QdOptions options;
  options.seed = 42;
  options.display_size = 40;
  options.pool = &pool;
  options.cache = state.range(0) != 0 ? &cache_manager : nullptr;
  QdSession session(&rfs, options);
  auto display = session.Start();
  for (int round = 0; round < 3; ++round) {
    std::vector<ImageId> picks;
    for (const DisplayGroup& group : display) {
      picks.insert(picks.end(), group.images.begin(), group.images.end());
    }
    auto next = session.Feedback(picks);
    if (!next.ok()) break;
    display = std::move(next).value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Finalize(200));
  }
  const cache::CacheStats cache_stats = cache_manager.TotalStats();
  state.counters["cache_hits"] = static_cast<double>(cache_stats.hits);
  state.counters["cache_misses"] = static_cast<double>(cache_stats.misses);
  state.counters["cache_bytes"] =
      static_cast<double>(cache_stats.bytes_used);
}
BENCHMARK(BM_QdFinalizeRepeat_Cache)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The chunked distance scan behind `QclusterEngine`: per-chunk top-k heaps
/// over a flat feature table, merged once at the end.
void BM_DistanceScanTopK_Threads(benchmark::State& state) {
  static const auto& table = *new auto(RandomPoints(40000, kPaperFeatureDim,
                                                    12));
  const auto query = RandomPoints(1, kPaperFeatureDim, 13)[0];
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kTopK = 64;
  const auto better = [](const KnnMatch& a, const KnnMatch& b) {
    if (a.distance_squared != b.distance_squared) {
      return a.distance_squared < b.distance_squared;
    }
    return a.id < b.id;
  };
  for (auto _ : state) {
    const std::size_t chunks = std::min(table.size(), pool.size() * 4);
    std::vector<std::vector<KnnMatch>> partial(chunks);
    pool.ParallelForChunks(
        0, table.size(), chunks,
        [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          std::vector<KnnMatch>& top = partial[chunk];
          for (std::size_t i = lo; i < hi; ++i) {
            KnnMatch n{static_cast<ImageId>(i), SquaredL2(table[i], query)};
            if (top.size() >= kTopK && !better(n, top.front())) continue;
            top.push_back(n);
            std::push_heap(top.begin(), top.end(), better);
            if (top.size() > kTopK) {
              std::pop_heap(top.begin(), top.end(), better);
              top.pop_back();
            }
          }
        });
    std::vector<KnnMatch> merged;
    for (const auto& p : partial) merged.insert(merged.end(), p.begin(),
                                                p.end());
    std::sort(merged.begin(), merged.end(), better);
    if (merged.size() > kTopK) merged.resize(kTopK);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_DistanceScanTopK_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// The overlapped snapshot loader: positioned chunk reads + CRC + decode
/// fanned across the pool, against the sequential reference at Arg(1).
/// Feeds the span.io.load.* histograms that back the async-I/O acceptance
/// numbers in docs/snapshot_format.md.
void BM_SnapshotLoad_Threads(benchmark::State& state) {
  static const std::string* path = [] {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 30;
    const Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 2000;
    options.image_width = 32;
    options.image_height = 32;
    const ImageDatabase db =
        DatabaseSynthesizer::Synthesize(catalog, options).value();
    const char* tmp = std::getenv("TMPDIR");
    auto* p = new std::string(std::string(tmp ? tmp : "/tmp") +
                              "/qdcbir_bench_snapshot.bin");
    if (!DatabaseIo::SaveDatabase(db, *p).ok()) std::abort();
    return p;
  }();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  SnapshotLoadOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    auto db = DatabaseIo::LoadDatabase(*path, options);
    if (!db.ok()) std::abort();
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_SnapshotLoad_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_HaarTransform(benchmark::State& state) {
  Rng rng(10);
  std::vector<double> input(48 * 48);
  for (double& v : input) v = rng.UniformDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarTransform2D(input, 48, 48));
  }
}
BENCHMARK(BM_HaarTransform);

}  // namespace
}  // namespace qdcbir

// Custom main (instead of BENCHMARK_MAIN) so the run can export its
// observability state deterministically: the metrics registry snapshot goes
// to $QDCBIR_METRICS_JSON if set, and an active $QDCBIR_TRACE tracer is
// flushed before exit rather than relying on atexit ordering.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  // $QDCBIR_PROFILE_HZ arms the background sampling profiler for the whole
  // run — how the profiler's own overhead is measured (docs/profiling.md):
  // compare a sweep with it unset against QDCBIR_PROFILE_HZ=47.
  bool profiling = false;
  if (const char* hz_env = std::getenv("QDCBIR_PROFILE_HZ")) {
    qdcbir::obs::Profiler::RegisterCurrentThread();
    qdcbir::obs::ProfilerOptions profiler_options;
    profiler_options.hz = std::atoi(hz_env);
    if (profiler_options.hz <= 0) {
      profiler_options.hz = qdcbir::obs::Profiler::kBackgroundHz;
    }
    std::string error;
    profiling =
        qdcbir::obs::Profiler::Global().Start(profiler_options, &error);
    if (!profiling) {
      std::fprintf(stderr, "[bench_micro] profiler unavailable: %s\n",
                   error.c_str());
    }
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (profiling) qdcbir::obs::Profiler::Global().Stop();

  if (const char* path = std::getenv("QDCBIR_METRICS_JSON")) {
    std::ofstream out(path);
    out << qdcbir::obs::MetricsRegistry::Global().SnapshotJson() << "\n";
    if (!out) {
      std::fprintf(stderr, "[bench_micro] cannot write metrics to %s\n", path);
      return 1;
    }
  }
  if (qdcbir::obs::Tracer::Global().enabled()) {
    std::string error;
    if (!qdcbir::obs::Tracer::Global().Stop(&error)) {
      std::fprintf(stderr, "[bench_micro] trace flush failed: %s\n",
                   error.c_str());
      return 1;
    }
  }
  return 0;
}
