// Reproduces Table 1 of the paper: per-query precision and GTIR of the
// Multiple Viewpoints (MV) baseline versus Query Decomposition (QD) on the
// 11 evaluation queries over the 15,000-image database.
//
// Flags: --images=15000 --seeds=5 --cache=bench_cache

#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/query/mv_engine.h"

namespace qdcbir {
namespace bench {
namespace {

struct PaperRow {
  double mv_precision, mv_gtir, qd_precision, qd_gtir;
};

const std::map<std::string, PaperRow>& PaperTable1() {
  static const auto* table = new std::map<std::string, PaperRow>{
      {"a_person", {0.25, 0.33, 0.81, 1.0}},
      {"airplane", {0.21, 1.0, 0.85, 1.0}},
      {"bird", {0.23, 0.33, 0.61, 1.0}},
      {"car", {0.35, 0.33, 0.85, 1.0}},
      {"horse", {0.37, 0.67, 0.72, 1.0}},
      {"mountain_view", {0.38, 1.0, 0.46, 1.0}},
      {"rose", {0.22, 0.5, 0.71, 1.0}},
      {"water_sports", {0.11, 0.5, 0.44, 1.0}},
      {"computer", {0.42, 0.5, 0.86, 1.0}},
      {"personal_computer", {0.44, 0.5, 0.69, 1.0}},
      {"laptop", {0.50, 0.5, 0.71, 1.0}},
  };
  return *table;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 15000));
  const int seeds = static_cast<int>(flags.Int("seeds", 5));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Table 1 — Various Query Evaluation in QD & MV approaches",
              "Per-query precision and ground-truth inclusion ratio (GTIR), "
              "averaged over " + std::to_string(seeds) +
              " simulated users; 3 feedback rounds; retrieved = |ground "
              "truth|. Paper values shown alongside measured values.");

  StatusOr<ImageDatabase> db = GetDatabase(images, /*with_channels=*/true,
                                           cache);
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    return 1;
  }
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
  if (!rfs.ok()) {
    std::fprintf(stderr, "rfs: %s\n", rfs.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"Query", "MV prec (paper)", "MV prec", "MV GTIR (paper)",
                      "MV GTIR", "QD prec (paper)", "QD prec",
                      "QD GTIR (paper)", "QD GTIR"});

  double mv_prec_sum = 0, mv_gtir_sum = 0, qd_prec_sum = 0, qd_gtir_sum = 0;
  std::size_t queries = 0;
  for (const QueryConceptSpec& spec : db->catalog().queries()) {
    StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
    if (!gt.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   gt.status().ToString().c_str());
      return 1;
    }

    double mv_prec = 0, mv_gtir = 0, qd_prec = 0, qd_gtir = 0;
    int completed = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      const ProtocolOptions protocol = PaperProtocol(seed);
      StatusOr<RunOutcome> qd =
          SessionRunner::RunQd(*rfs, *gt, QdOptions{}, protocol);
      MvEngine mv_engine(&*db);
      StatusOr<RunOutcome> mv =
          SessionRunner::RunEngine(mv_engine, *gt, protocol);
      if (!qd.ok() || !mv.ok()) continue;
      qd_prec += qd->final_precision;
      qd_gtir += qd->final_gtir;
      mv_prec += mv->final_precision;
      mv_gtir += mv->final_gtir;
      ++completed;
    }
    if (completed == 0) continue;
    mv_prec /= completed;
    mv_gtir /= completed;
    qd_prec /= completed;
    qd_gtir /= completed;

    const PaperRow paper = PaperTable1().at(spec.name);
    table.AddRow({spec.name, TablePrinter::Num(paper.mv_precision),
                  TablePrinter::Num(mv_prec),
                  TablePrinter::Num(paper.mv_gtir),
                  TablePrinter::Num(mv_gtir),
                  TablePrinter::Num(paper.qd_precision),
                  TablePrinter::Num(qd_prec),
                  TablePrinter::Num(paper.qd_gtir),
                  TablePrinter::Num(qd_gtir)});
    mv_prec_sum += mv_prec;
    mv_gtir_sum += mv_gtir;
    qd_prec_sum += qd_prec;
    qd_gtir_sum += qd_gtir;
    ++queries;
  }
  const double n = static_cast<double>(queries);
  table.AddRow({"Average", TablePrinter::Num(0.32),
                TablePrinter::Num(mv_prec_sum / n), TablePrinter::Num(0.56),
                TablePrinter::Num(mv_gtir_sum / n), TablePrinter::Num(0.70),
                TablePrinter::Num(qd_prec_sum / n), TablePrinter::Num(1.0),
                TablePrinter::Num(qd_gtir_sum / n)});
  table.Print(std::cout);

  std::printf(
      "\nShape check (paper claim): QD beats MV on average precision "
      "(measured %.2f vs %.2f) and GTIR (measured %.2f vs %.2f): %s\n",
      qd_prec_sum / n, mv_prec_sum / n, qd_gtir_sum / n, mv_gtir_sum / n,
      (qd_prec_sum > mv_prec_sum && qd_gtir_sum > mv_gtir_sum) ? "HOLDS"
                                                               : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
