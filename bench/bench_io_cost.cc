// Reproduces the paper's Section 5.2.2 disk-utilization argument.
//
// In the paper's cost model every tree node opened is one disk access. The
// claims:
//   1. processing a relevance-feedback round accesses only one tree node
//      per relevant representative (shared when several representatives
//      come from the same cluster);
//   2. each final localized k-NN computation usually needs about one node
//      (the leaf), plus parents only when boundary expansion triggers;
//   3. a traditional global-kNN round reads the entire database instead.
//
// Flags: --images=15000 --seeds=5 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 15000));
  const int seeds = static_cast<int>(flags.Int("seeds", 5));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Section 5.2.2 — disk utilization of QD sessions",
              "Node accesses (the paper's unit of disk I/O) per session "
              "phase, averaged over the 11 queries and " +
                  std::to_string(seeds) + " users.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/true, cache);
  if (!db.ok()) return 1;
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
  if (!rfs.ok()) return 1;

  double feedback_nodes = 0, knn_nodes = 0, subqueries = 0, expansions = 0;
  int runs = 0;
  for (const QueryConceptSpec& spec : db->catalog().queries()) {
    StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
    if (!gt.ok()) continue;
    for (int seed = 1; seed <= seeds; ++seed) {
      StatusOr<RunOutcome> outcome = SessionRunner::RunQd(
          *rfs, *gt, QdOptions{}, PaperProtocol(seed));
      if (!outcome.ok()) continue;
      feedback_nodes +=
          static_cast<double>(outcome->qd_stats.distinct_nodes_sampled);
      knn_nodes += static_cast<double>(outcome->qd_stats.knn_nodes_visited);
      subqueries +=
          static_cast<double>(outcome->qd_stats.localized_subqueries);
      expansions +=
          static_cast<double>(outcome->qd_stats.boundary_expansions);
      ++runs;
    }
  }
  if (runs == 0) return 1;

  const RfsTree::Stats tree_stats = rfs->ComputeStats();
  const double nodes_per_subquery = knn_nodes / subqueries;

  TablePrinter table({"Phase", "Node accesses (avg/session)", "Notes"});
  table.AddRow({"Feedback rounds (all 3)",
                TablePrinter::Num(feedback_nodes / runs, 1),
                "distinct nodes whose representatives were read"});
  table.AddRow({"Localized k-NN (final round)",
                TablePrinter::Num(knn_nodes / runs, 1),
                TablePrinter::Num(subqueries / runs, 1) + " subqueries, " +
                    TablePrinter::Num(nodes_per_subquery, 1) +
                    " nodes each"});
  table.AddRow({"Boundary expansions",
                TablePrinter::Num(expansions / runs, 1),
                "parent climbs (each widens one subquery)"});
  table.AddRow({"Global-kNN round (reference)",
                std::to_string(tree_stats.leaf_count),
                "a full scan reads every leaf"});
  table.Print(std::cout);

  // "Usually one" in the paper refers to the leaf; our best-first search
  // also opens the internal nodes on the way down (height - 1 of them), so
  // the faithful check is: nodes per subquery is within a few of the tree
  // height, far below the leaf count.
  std::printf(
      "\nShape check (paper claim): a localized k-NN computation touches a "
      "handful of nodes (measured %.1f per subquery, tree height %d, %zu "
      "leaves total): %s\n",
      nodes_per_subquery, tree_stats.height, tree_stats.leaf_count,
      nodes_per_subquery < 4.0 * tree_stats.height ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
