// Reproduces Figure 10 of the paper: overall query processing time versus
// database size, using randomly generated simulated queries (the paper runs
// 100 queries of 2 feedback rounds plus the final localized k-NN round).
//
// The paper's claim is *shape*: overall QD query time grows linearly with
// the database size and stays small in absolute terms because feedback
// rounds never touch the whole database. A traditional global-kNN pipeline
// (MV) is timed alongside for reference.
//
// A thread-count sweep re-times the QD pipeline at the largest database
// size with pools of 1/2/4/8 lanes (override with --threads=...), so the
// speedup of the parallel localized-subquery stage is visible next to the
// paper's scaling claim.
//
// Flags: --max_images=15000 --steps=5 --queries=100 --cache=bench_cache
//        --threads=1,2,4,8 --json=BENCH_fig10_query_time.json

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/core/stats.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/obs/clock.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/query/qd_engine.h"

namespace qdcbir {
namespace bench {
namespace {

struct TimingSample {
  double total_seconds = 0.0;
  double iteration_seconds = 0.0;  ///< mean per feedback round
};

/// One simulated QD query: 2 feedback rounds of random representative picks
/// plus the final localized k-NN (the paper's Figure 10/11 protocol).
TimingSample RunRandomQdQuery(const RfsTree& rfs, std::uint64_t seed,
                              std::size_t k, ThreadPool* pool = nullptr) {
  QdOptions options;
  options.seed = seed;
  options.pool = pool;
  QdSession session(&rfs, options);
  Rng rng(seed ^ 0xabcdef);

  TimingSample sample;
  WallTimer total;
  auto display = session.Start();
  constexpr int kRounds = 2;
  double iteration_total = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    // The simulated user marks up to 3 random displayed representatives.
    std::vector<ImageId> flat;
    for (const DisplayGroup& g : display) {
      flat.insert(flat.end(), g.images.begin(), g.images.end());
    }
    std::vector<ImageId> picks;
    for (const std::size_t i :
         rng.SampleWithoutReplacement(flat.size(), 3)) {
      picks.push_back(flat[i]);
    }
    WallTimer iteration;
    auto next = session.Feedback(picks);
    iteration_total += iteration.Seconds();
    if (!next.ok()) break;
    display = std::move(next).value();
  }
  auto result = session.Finalize(k);
  (void)result;
  sample.total_seconds = total.Seconds();
  sample.iteration_seconds = iteration_total / kRounds;
  return sample;
}

/// One simulated MV query: 2 feedback rounds of random picks (each costing
/// one global k-NN per viewpoint channel) plus the final retrieval.
TimingSample RunRandomMvQuery(const ImageDatabase& db, std::uint64_t seed,
                              std::size_t k) {
  MvOptions options;
  options.seed = seed;
  MvEngine engine(&db, options);
  Rng rng(seed ^ 0x123456);

  TimingSample sample;
  WallTimer total;
  engine.Start();
  constexpr int kRounds = 2;
  double iteration_total = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<ImageId> picks;
    for (int i = 0; i < 3; ++i) {
      picks.push_back(static_cast<ImageId>(rng.UniformInt(db.size())));
    }
    WallTimer iteration;
    auto next = engine.Feedback(picks);
    iteration_total += iteration.Seconds();
    if (!next.ok()) break;
  }
  auto result = engine.Finalize(k);
  (void)result;
  sample.total_seconds = total.Seconds();
  sample.iteration_seconds = iteration_total / kRounds;
  return sample;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t max_images =
      static_cast<std::size_t>(flags.Int("max_images", 15000));
  const int steps = static_cast<int>(flags.Int("steps", 5));
  const int queries = static_cast<int>(flags.Int("queries", 100));
  const std::string cache = flags.Str("cache", "bench_cache");
  const std::string csv = flags.Str("csv", "");
  const std::string json = flags.Str("json", "BENCH_fig10_query_time.json");
  const std::vector<std::int64_t> sweep_threads =
      flags.IntList("threads", {1, 2, 4, 8});

  PrintHeader("Figure 10 — Overall query processing time vs database size",
              std::to_string(queries) +
                  " random simulated queries per size; 2 feedback rounds + "
                  "final localized k-NN. Paper claim: time grows linearly "
                  "and stays low; a global-kNN baseline (MV) is shown for "
                  "reference.");

  StatusOr<ImageDatabase> full =
      GetDatabase(max_images, /*with_channels=*/true, cache);
  if (!full.ok()) {
    std::fprintf(stderr, "database: %s\n", full.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"DB size", "QD total (ms/query)", "MV total (ms/query)",
                      "QD / MV"});
  std::vector<double> sizes, qd_times, mv_times;
  std::vector<BenchRecord> records;
  StatusOr<RfsTree> last_rfs = Status::Internal("no step ran");
  StatusOr<ImageDatabase> last_db = Status::Internal("no step ran");
  for (int step = 1; step <= steps; ++step) {
    const std::size_t size = max_images * step / steps;
    StatusOr<ImageDatabase> db =
        step == steps ? std::move(full).value()
                      : DatabaseSynthesizer::Subsample(*full, size).value();
    if (!db.ok()) return 1;
    StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
    if (!rfs.ok()) return 1;

    std::vector<double> qd_samples, mv_samples;
    for (int q = 0; q < queries; ++q) {
      qd_samples.push_back(
          RunRandomQdQuery(*rfs, static_cast<std::uint64_t>(q) + 1, 50)
              .total_seconds);
      mv_samples.push_back(
          RunRandomMvQuery(*db, static_cast<std::uint64_t>(q) + 1, 50)
              .total_seconds);
    }
    // Median: robust against scheduler noise on shared machines.
    const double qd_ms = Median(qd_samples) * 1e3;
    const double mv_ms = Median(mv_samples) * 1e3;
    table.AddRow({std::to_string(size), TablePrinter::Num(qd_ms, 3),
                  TablePrinter::Num(mv_ms, 3),
                  TablePrinter::Num(qd_ms / mv_ms, 3)});
    sizes.push_back(static_cast<double>(size));
    qd_times.push_back(qd_ms);
    mv_times.push_back(mv_ms);

    BenchRecord record;
    record.bench = "fig10_query_time";
    record.config = "db=" + std::to_string(size);
    record.threads = ThreadPool::Global().size();
    record.wall_seconds = qd_ms / 1e3;
    record.metrics = {{"qd_total_ms", qd_ms},
                      {"mv_total_ms", mv_ms},
                      {"queries", static_cast<double>(queries)}};
    records.push_back(std::move(record));

    last_rfs = std::move(rfs);
    last_db = std::move(db);
  }
  table.Print(std::cout);

  // Thread-count sweep at the largest size: the final localized-subquery
  // round of each QD query fans out across the pool; everything before it
  // is per-neighborhood work that does not depend on the pool width.
  if (last_rfs.ok() && !sweep_threads.empty()) {
    TablePrinter sweep({"Threads", "QD total (ms/query)", "Speedup vs 1"});
    double base_ms = 0.0;
    for (const std::int64_t t : sweep_threads) {
      if (t <= 0) continue;
      ThreadPool pool(static_cast<std::size_t>(t));
      std::vector<double> samples;
      for (int q = 0; q < queries; ++q) {
        samples.push_back(RunRandomQdQuery(*last_rfs,
                                           static_cast<std::uint64_t>(q) + 1,
                                           50, &pool)
                              .total_seconds);
      }
      const double ms = Median(samples) * 1e3;
      if (base_ms == 0.0) base_ms = ms;
      sweep.AddRow({std::to_string(t), TablePrinter::Num(ms, 3),
                    TablePrinter::Num(base_ms / ms, 2)});

      BenchRecord record;
      record.bench = "fig10_query_time_thread_sweep";
      record.config = "db=" + std::to_string(last_rfs->num_images());
      record.threads = static_cast<std::size_t>(t);
      record.wall_seconds = ms / 1e3;
      record.metrics = {{"qd_total_ms", ms},
                        {"speedup_vs_1", base_ms / ms},
                        {"queries", static_cast<double>(queries)}};
      records.push_back(std::move(record));
    }
    std::printf("\nThread sweep at %zu images:\n", last_rfs->num_images());
    sweep.Print(std::cout);
  }

  if (!csv.empty()) {
    std::ofstream out(csv);
    out << "db_size,qd_total_ms,mv_total_ms\n";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      out << sizes[i] << "," << qd_times[i] << "," << mv_times[i] << "\n";
    }
    std::printf("series written to %s\n", csv.c_str());
  }

  if (!json.empty()) {
    const Status append = AppendBenchJson(json, records);
    if (append.ok()) {
      std::printf("results appended to %s\n", json.c_str());
    } else {
      std::fprintf(stderr, "warning: %s\n", append.ToString().c_str());
    }
  }

  const double r = LinearCorrelation(sizes, qd_times);
  std::printf(
      "\nShape check (paper claim): overall QD query time scales linearly "
      "with database size (linear correlation R = %.3f): %s\n",
      r, r > 0.9 ? "HOLDS" : "CHECK MANUALLY (timing noise)");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
