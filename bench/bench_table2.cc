// Reproduces Table 2 of the paper: average precision and GTIR of MV and QD
// at the end of each of the 3 relevance-feedback rounds, averaged over the
// 11 evaluation queries.
//
// QD commits no k-NN computation until the final round, so its precision is
// undefined ("n/a") for rounds 1 and 2 — exactly as the paper reports.
//
// Flags: --images=15000 --seeds=5 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/query/mv_engine.h"

namespace qdcbir {
namespace bench {
namespace {

struct PaperRound {
  const char* mv_precision;
  double mv_gtir;
  const char* qd_precision;
  double qd_gtir;
};

constexpr PaperRound kPaperTable2[3] = {
    {"0.10", 0.51, "n/a", 0.695},
    {"0.30", 0.56, "n/a", 0.907},
    {"0.32", 0.56, "0.70", 1.0},
};

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 15000));
  const int seeds = static_cast<int>(flags.Int("seeds", 5));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Table 2 — Quality Comparison per feedback round",
              "Average precision and GTIR of MV and QD at the end of each "
              "feedback round, over the 11 evaluation queries and " +
                  std::to_string(seeds) + " simulated users.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/true, cache);
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    return 1;
  }
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
  if (!rfs.ok()) {
    std::fprintf(stderr, "rfs: %s\n", rfs.status().ToString().c_str());
    return 1;
  }

  constexpr int kRounds = 3;
  double mv_prec[kRounds] = {0}, mv_gtir[kRounds] = {0};
  double qd_prec[kRounds] = {0}, qd_gtir[kRounds] = {0};
  int mv_runs = 0, qd_runs = 0;

  for (const QueryConceptSpec& spec : db->catalog().queries()) {
    StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
    if (!gt.ok()) return 1;
    for (int seed = 1; seed <= seeds; ++seed) {
      const ProtocolOptions protocol = PaperProtocol(seed);
      StatusOr<RunOutcome> qd =
          SessionRunner::RunQd(*rfs, *gt, QdOptions{}, protocol);
      if (qd.ok() && qd->rounds.size() == kRounds) {
        for (int r = 0; r < kRounds; ++r) {
          qd_gtir[r] += qd->rounds[r].gtir;
          if (qd->rounds[r].precision_defined) {
            qd_prec[r] += qd->rounds[r].precision;
          }
        }
        ++qd_runs;
      }
      MvEngine mv_engine(&*db);
      StatusOr<RunOutcome> mv =
          SessionRunner::RunEngine(mv_engine, *gt, protocol);
      if (mv.ok() && mv->rounds.size() == kRounds) {
        for (int r = 0; r < kRounds; ++r) {
          mv_gtir[r] += mv->rounds[r].gtir;
          mv_prec[r] += mv->rounds[r].precision;
        }
        ++mv_runs;
      }
    }
  }
  if (mv_runs == 0 || qd_runs == 0) {
    std::fprintf(stderr, "no completed runs\n");
    return 1;
  }

  TablePrinter table({"Round", "MV prec (paper)", "MV prec",
                      "MV GTIR (paper)", "MV GTIR", "QD prec (paper)",
                      "QD prec", "QD GTIR (paper)", "QD GTIR"});
  for (int r = 0; r < kRounds; ++r) {
    const bool last = r == kRounds - 1;
    table.AddRow(
        {std::to_string(r + 1), kPaperTable2[r].mv_precision,
         TablePrinter::Num(mv_prec[r] / mv_runs),
         TablePrinter::Num(kPaperTable2[r].mv_gtir),
         TablePrinter::Num(mv_gtir[r] / mv_runs),
         kPaperTable2[r].qd_precision,
         last ? TablePrinter::Num(qd_prec[r] / qd_runs) : std::string("n/a"),
         TablePrinter::Num(kPaperTable2[r].qd_gtir),
         TablePrinter::Num(qd_gtir[r] / qd_runs)});
  }
  table.Print(std::cout);

  const bool mv_plateaus =
      mv_gtir[2] / mv_runs <= mv_gtir[1] / mv_runs + 0.02;
  std::printf(
      "\nShape checks (paper claims):\n"
      "  - QD GTIR grows across rounds and reaches ~1.0 (measured %.2f -> "
      "%.2f -> %.2f): %s\n"
      "  - MV GTIR plateaus after round 2 (measured %.2f -> %.2f): %s\n",
      qd_gtir[0] / qd_runs, qd_gtir[1] / qd_runs, qd_gtir[2] / qd_runs,
      (qd_gtir[2] / qd_runs > qd_gtir[0] / qd_runs &&
       qd_gtir[2] / qd_runs > 0.9)
          ? "HOLDS"
          : "VIOLATED",
      mv_gtir[1] / mv_runs, mv_gtir[2] / mv_runs,
      mv_plateaus ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
