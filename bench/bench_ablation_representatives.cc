// Ablation: the representative-image fraction (paper designates 5% of the
// database as representatives).
//
// Fewer representatives mean a lighter RFS structure (the fraction of the
// database a client needs for feedback processing) but a higher chance that
// a semantic sub-concept has no representative at the upper tree levels and
// is never discovered during decomposition. This sweep quantifies the
// trade-off.
//
// Flags: --images=6000 --seeds=3 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 6000));
  const int seeds = static_cast<int>(flags.Int("seeds", 3));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Ablation — representative fraction (paper uses 5%)",
              "Retrieval quality vs the fraction of the database stored as "
              "representative images, over the 11 queries and " +
                  std::to_string(seeds) + " users at " +
                  std::to_string(images) + " images.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/false, cache);
  if (!db.ok()) return 1;

  TablePrinter table({"Fraction", "Leaf reps", "Actual %", "Precision",
                      "GTIR"});
  for (const double fraction : {0.02, 0.05, 0.08, 0.12}) {
    RfsBuildOptions build = PaperRfsOptions();
    build.representatives.fraction = fraction;
    const std::string key =
        "frac" + std::to_string(static_cast<int>(fraction * 1000));
    StatusOr<RfsTree> rfs = GetRfs(*db, build, key, cache);
    if (!rfs.ok()) continue;
    const RfsTree::Stats stats = rfs->ComputeStats();

    double precision = 0, gtir = 0;
    int runs = 0;
    for (const QueryConceptSpec& spec : db->catalog().queries()) {
      StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
      if (!gt.ok()) continue;
      for (int seed = 1; seed <= seeds; ++seed) {
        StatusOr<RunOutcome> outcome = SessionRunner::RunQd(
            *rfs, *gt, QdOptions{}, PaperProtocol(seed));
        if (!outcome.ok()) continue;
        precision += outcome->final_precision;
        gtir += outcome->final_gtir;
        ++runs;
      }
    }
    if (runs == 0) continue;
    table.AddRow({TablePrinter::Num(fraction, 2),
                  std::to_string(stats.leaf_representatives),
                  TablePrinter::Num(100.0 * stats.representative_fraction, 1),
                  TablePrinter::Num(precision / runs),
                  TablePrinter::Num(gtir / runs)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: GTIR rises with the representative fraction and "
      "saturates; the paper's 5%% sits near the knee at its 15k scale.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
