// Reproduces Figure 1 of the paper: the four "white sedan" view sub-concepts
// (side / front / back / angle) form distinct, well-separated clusters when
// the 37-D feature space is projected onto its top 3 principal components —
// the semantic-scattering premise of Query Decomposition.
//
// Prints per-cluster centroids in PCA space plus separation statistics, and
// writes the projected points to fig1_points.csv for external plotting.
//
// Flags: --images=15000 --cache=bench_cache --csv=fig1_points.csv

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/cluster/cluster_stats.h"
#include "qdcbir/cluster/pca.h"
#include "qdcbir/eval/table_printer.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 15000));
  const std::string cache = flags.Str("cache", "bench_cache");
  const std::string csv = flags.Str("csv", "fig1_points.csv");

  PrintHeader("Figure 1 — Four distinct \"white sedan\" clusters in 3-D PCA "
              "projection",
              "PCA of the full 37-D database projected to 3 dimensions; the "
              "white-sedan view sub-concepts must form separated clusters "
              "while staying far apart from each other.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/true, cache);
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Fit PCA on the whole database (as the paper does) and project the
  // white-sedan images.
  Pca pca;
  const Status fit = pca.Fit(db->features(), 3);
  if (!fit.ok()) {
    std::fprintf(stderr, "pca: %s\n", fit.ToString().c_str());
    return 1;
  }
  std::printf("PCA explained variance ratio (3 components): %.1f%%\n\n",
              100.0 * pca.explained_variance_ratio());

  const CategoryId sedan = db->catalog().FindCategory("white_sedan").value();
  const std::vector<SubConceptId>& views =
      db->catalog().category(sedan).subconcepts;

  std::vector<FeatureVector> projected;
  std::vector<int> labels;
  std::ofstream out(csv);
  out << "view,pc1,pc2,pc3\n";
  TablePrinter table({"View sub-concept", "Images", "PC1 centroid",
                      "PC2 centroid", "PC3 centroid", "Mean radius"});
  for (std::size_t v = 0; v < views.size(); ++v) {
    const std::string& name = db->catalog().subconcept(views[v]).name;
    std::vector<FeatureVector> cluster;
    for (const ImageId id : db->ImagesOfSubConcept(views[v])) {
      const FeatureVector p = pca.Transform(db->feature(id)).value();
      out << name << "," << p[0] << "," << p[1] << "," << p[2] << "\n";
      projected.push_back(p);
      labels.push_back(static_cast<int>(v));
      cluster.push_back(p);
    }
    const FeatureVector centroid = FeatureVector::Centroid(cluster);
    double radius = 0.0;
    for (const FeatureVector& p : cluster) {
      radius += (p - centroid).Norm();
    }
    radius /= static_cast<double>(cluster.size());
    table.AddRow({name, std::to_string(cluster.size()),
                  TablePrinter::Num(centroid[0]),
                  TablePrinter::Num(centroid[1]),
                  TablePrinter::Num(centroid[2]), TablePrinter::Num(radius)});
  }
  table.Print(std::cout);

  // ASCII scatter of the first two principal components (the paper's
  // Figure 1, terminal edition): one letter per view sub-concept.
  {
    constexpr int kRows = 22;
    constexpr int kCols = 66;
    double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
    for (const FeatureVector& p : projected) {
      min_x = std::min(min_x, p[0]);
      max_x = std::max(max_x, p[0]);
      min_y = std::min(min_y, p[1]);
      max_y = std::max(max_y, p[1]);
    }
    std::vector<std::string> grid(kRows, std::string(kCols, ' '));
    for (std::size_t i = 0; i < projected.size(); ++i) {
      const int col = static_cast<int>((projected[i][0] - min_x) /
                                       (max_x - min_x + 1e-12) * (kCols - 1));
      const int row = static_cast<int>((projected[i][1] - min_y) /
                                       (max_y - min_y + 1e-12) * (kRows - 1));
      grid[kRows - 1 - row][col] = static_cast<char>('A' + labels[i]);
    }
    std::printf("\nPC1 (x) vs PC2 (y); A=side B=front C=back D=angle:\n");
    for (const std::string& line : grid) {
      std::printf("  |%s|\n", line.c_str());
    }
  }

  const ClusterSeparationStats stats = ComputeSeparation(projected, labels);
  const double silhouette = MeanSilhouette(projected, labels);
  std::printf(
      "\nSeparation in 3-D PCA space: %zu clusters, mean intra radius %.2f, "
      "min inter-centroid distance %.2f, separation ratio %.2f, "
      "mean silhouette %.2f\n",
      stats.num_clusters, stats.mean_intra_radius,
      stats.min_inter_centroid_dist, stats.separation_ratio, silhouette);
  std::printf("Projected points written to %s\n", csv.c_str());

  std::printf(
      "\nShape check (paper claim): the four view sub-concepts are distinct "
      "clusters (separation ratio > 1): %s\n",
      stats.separation_ratio > 1.0 ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
