// Reproduces Figure 11 of the paper: average relevance-feedback iteration
// processing time versus database size.
//
// The paper's claim: a QD feedback iteration costs almost nothing — it only
// samples representative images from the RFS nodes on the decomposition
// frontier — and the (already small) cost grows linearly with database
// size. Traditional relevance feedback (MV-style) instead performs global
// k-NN computation on the entire database every round.
//
// Flags: --max_images=15000 --steps=5 --queries=100 --cache=bench_cache

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/core/stats.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/obs/clock.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/query/qd_engine.h"

namespace qdcbir {
namespace bench {
namespace {

/// Mean per-iteration feedback cost of one simulated QD query (2 rounds of
/// random picks; no finalization — Figure 11 isolates the iteration cost).
double QdIterationSeconds(const RfsTree& rfs, std::uint64_t seed) {
  QdOptions options;
  options.seed = seed;
  QdSession session(&rfs, options);
  Rng rng(seed ^ 0xfeed);
  auto display = session.Start();
  double total = 0.0;
  constexpr int kRounds = 2;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<ImageId> flat;
    for (const DisplayGroup& g : display) {
      flat.insert(flat.end(), g.images.begin(), g.images.end());
    }
    std::vector<ImageId> picks;
    for (const std::size_t i : rng.SampleWithoutReplacement(flat.size(), 3)) {
      picks.push_back(flat[i]);
    }
    WallTimer timer;
    auto next = session.Feedback(picks);
    total += timer.Seconds();
    if (!next.ok()) break;
    display = std::move(next).value();
  }
  return total / kRounds;
}

/// Mean per-iteration feedback cost of one simulated MV query (each round
/// refines and re-runs the per-channel global k-NN).
double MvIterationSeconds(const ImageDatabase& db, std::uint64_t seed) {
  MvOptions options;
  options.seed = seed;
  MvEngine engine(&db, options);
  Rng rng(seed ^ 0xbeef);
  engine.Start();
  double total = 0.0;
  constexpr int kRounds = 2;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<ImageId> picks;
    for (int i = 0; i < 3; ++i) {
      picks.push_back(static_cast<ImageId>(rng.UniformInt(db.size())));
    }
    WallTimer timer;
    auto next = engine.Feedback(picks);
    total += timer.Seconds();
    if (!next.ok()) break;
  }
  return total / kRounds;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t max_images =
      static_cast<std::size_t>(flags.Int("max_images", 15000));
  const int steps = static_cast<int>(flags.Int("steps", 5));
  const int queries = static_cast<int>(flags.Int("queries", 100));
  const std::string cache = flags.Str("cache", "bench_cache");
  const std::string csv = flags.Str("csv", "");

  PrintHeader(
      "Figure 11 — Average iteration processing time vs database size",
      std::to_string(queries) +
          " random simulated queries per size; the per-round feedback "
          "processing cost is isolated. QD touches only frontier nodes; "
          "the global-kNN baseline (MV) re-scans the database.");

  StatusOr<ImageDatabase> full =
      GetDatabase(max_images, /*with_channels=*/true, cache);
  if (!full.ok()) {
    std::fprintf(stderr, "database: %s\n", full.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"DB size", "QD iteration (ms)",
                      "MV/global-kNN iteration (ms)", "speedup"});
  std::vector<double> sizes, qd_times, mv_times;
  for (int step = 1; step <= steps; ++step) {
    const std::size_t size = max_images * step / steps;
    StatusOr<ImageDatabase> db =
        step == steps ? std::move(full).value()
                      : DatabaseSynthesizer::Subsample(*full, size).value();
    if (!db.ok()) return 1;
    StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
    if (!rfs.ok()) return 1;

    std::vector<double> qd_samples, mv_samples;
    for (int q = 0; q < queries; ++q) {
      qd_samples.push_back(
          QdIterationSeconds(*rfs, static_cast<std::uint64_t>(q) + 1));
      mv_samples.push_back(
          MvIterationSeconds(*db, static_cast<std::uint64_t>(q) + 1));
    }
    // Median: robust against scheduler noise on shared machines.
    const double qd_ms = Median(qd_samples) * 1e3;
    const double mv_ms = Median(mv_samples) * 1e3;
    table.AddRow({std::to_string(size), TablePrinter::Num(qd_ms, 4),
                  TablePrinter::Num(mv_ms, 4),
                  TablePrinter::Num(mv_ms / qd_ms, 1) + "x"});
    sizes.push_back(static_cast<double>(size));
    qd_times.push_back(qd_ms);
    mv_times.push_back(mv_ms);
  }
  table.Print(std::cout);

  if (!csv.empty()) {
    std::ofstream out(csv);
    out << "db_size,qd_iter_ms,mv_iter_ms\n";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      out << sizes[i] << "," << qd_times[i] << "," << mv_times[i] << "\n";
    }
    std::printf("series written to %s\n", csv.c_str());
  }

  const double r = LinearCorrelation(sizes, qd_times);
  std::printf(
      "\nShape checks (paper claims):\n"
      "  - QD iteration time is substantially below a global-kNN round\n"
      "  - QD iteration time grows at most linearly with database size "
      "(linear correlation R = %.3f)\n",
      r);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
