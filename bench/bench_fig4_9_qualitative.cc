// Reproduces Figures 4-9 of the paper qualitatively: the top-k result panels
// for the computer-family queries under MV and QD.
//
//   Figures 4/5: "portable computer" (the laptop query), top 8
//   Figures 6/7: "personal computer", top 16
//   Figures 8/9: "computer", top 24
//
// The paper's panels show that MV's results come from a single neighborhood
// (one sub-concept) while QD's cover every relevant sub-concept. Since this
// reproduction is terminal-based, each "panel" prints the ground-truth label
// of every retrieved image plus a per-sub-concept coverage summary.
//
// With --dump_dir=DIR the actual pixel panels are also written as PPM
// images (one per retrieved image), making the reproduction of the paper's
// figure panels inspectable.
//
// Flags: --images=15000 --seed=1 --cache=bench_cache --dump_dir=

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/metrics.h"
#include "qdcbir/image/ppm_io.h"
#include "qdcbir/query/mv_engine.h"

namespace qdcbir {
namespace bench {
namespace {

/// Writes the retrieved images of one panel as PPM files.
void DumpPanel(const ImageDatabase& db, const std::string& dump_dir,
               const std::string& panel, const std::string& method,
               const std::vector<ImageId>& results) {
  if (dump_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dump_dir, ec);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string path = dump_dir + "/" + panel + "_" + method + "_" +
                             std::to_string(i + 1) + ".ppm";
    const Status s = WritePpm(db.Render(results[i]), path);
    if (!s.ok()) {
      std::fprintf(stderr, "dump failed: %s\n", s.ToString().c_str());
      return;
    }
  }
}

void PrintPanel(const ImageDatabase& db, const QueryGroundTruth& gt,
                const std::string& title,
                const std::vector<ImageId>& results) {
  std::printf("%s\n", title.c_str());
  std::map<std::string, int> coverage;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string label = db.LabelOf(results[i]);
    const bool relevant = gt.IsRelevant(results[i]);
    std::printf("  #%2zu %-40s %s\n", i + 1, label.c_str(),
                relevant ? "[relevant]" : "");
    if (relevant) coverage[label] += 1;
  }
  std::printf("  -> sub-concept coverage:");
  std::size_t covered = 0;
  for (std::size_t s = 0; s < gt.subconcept_images.size(); ++s) {
    int hits = 0;
    for (const ImageId id : results) {
      for (const ImageId member : gt.subconcept_images[s]) {
        if (id == member) {
          ++hits;
          break;
        }
      }
      if (hits > 0) break;
    }
    // Count actual hits for the summary.
    int total_hits = 0;
    for (const ImageId id : results) {
      for (const ImageId member : gt.subconcept_images[s]) {
        if (id == member) {
          ++total_hits;
          break;
        }
      }
    }
    if (total_hits > 0) ++covered;
    std::printf(" %s=%d", gt.spec.subconcepts[s].name.c_str(), total_hits);
  }
  std::printf("  (GTIR %.2f)\n\n",
              static_cast<double>(covered) /
                  static_cast<double>(gt.subconcept_images.size()));
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 15000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.Int("seed", 1));
  const std::string cache = flags.Str("cache", "bench_cache");
  const std::string dump_dir = flags.Str("dump_dir", "");

  PrintHeader("Figures 4-9 — Qualitative top-k panels, MV vs QD",
              "Top-k retrieval panels for the computer-family queries. The "
              "paper's observation: MV returns one neighborhood; QD covers "
              "all relevant sub-concepts.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/true, cache);
  if (!db.ok()) return 1;
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
  if (!rfs.ok()) return 1;

  struct Panel {
    const char* query;
    const char* caption;
    std::size_t top_k;
  };
  const Panel panels[] = {
      {"laptop", "Figures 4/5 — \"portable computer\", top 8", 8},
      {"personal_computer", "Figures 6/7 — \"personal computer\", top 16", 16},
      {"computer", "Figures 8/9 — \"computer\", top 24", 24},
  };

  for (const Panel& panel : panels) {
    StatusOr<QueryGroundTruth> gt = BuildGroundTruth(
        *db, db->catalog().FindQuery(panel.query).value());
    if (!gt.ok()) return 1;

    ProtocolOptions protocol = PaperProtocol(seed);
    protocol.retrieval_size = panel.top_k;

    StatusOr<RunOutcome> qd =
        SessionRunner::RunQd(*rfs, *gt, QdOptions{}, protocol);
    MvEngine mv_engine(&*db);
    StatusOr<RunOutcome> mv =
        SessionRunner::RunEngine(mv_engine, *gt, protocol);
    if (!qd.ok() || !mv.ok()) {
      std::fprintf(stderr, "%s failed: %s %s\n", panel.query,
                   qd.ok() ? "" : qd.status().ToString().c_str(),
                   mv.ok() ? "" : mv.status().ToString().c_str());
      return 1;
    }

    std::printf("======== %s ========\n\n", panel.caption);
    PrintPanel(*db, *gt, "MV panel:", mv->final_results);
    PrintPanel(*db, *gt, "QD panel:", qd->final_results);
    DumpPanel(*db, dump_dir, panel.query, "mv", mv->final_results);
    DumpPanel(*db, dump_dir, panel.query, "qd", qd->final_results);
    std::printf(
        "Shape check: QD covers at least as many sub-concepts as MV "
        "(QD GTIR %.2f vs MV GTIR %.2f): %s\n\n",
        qd->final_gtir, mv->final_gtir,
        qd->final_gtir >= mv->final_gtir ? "HOLDS" : "VIOLATED");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
