// Ablation: the boundary-expansion threshold of Section 3.3.
//
// The paper picks 0.4 for its database and argues: a higher threshold means
// fewer expansions (cheaper, but query images near a leaf boundary may miss
// neighbors in sibling leaves); a lower threshold expands more (better
// recall near boundaries, larger localized searches). This sweep measures
// precision, GTIR, expansions per query, and localized k-NN candidates
// across thresholds.
//
// Flags: --images=6000 --seeds=3 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 6000));
  const int seeds = static_cast<int>(flags.Int("seeds", 3));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Ablation — boundary-expansion threshold (paper uses 0.4)",
              "Precision / GTIR / expansion counts across thresholds, "
              "averaged over the 11 queries and " + std::to_string(seeds) +
                  " users at " + std::to_string(images) + " images.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/false, cache);
  if (!db.ok()) return 1;
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper_nc", cache);
  if (!rfs.ok()) return 1;

  TablePrinter table({"Threshold", "Precision", "GTIR", "Expansions/query",
                      "kNN candidates/query"});
  for (const double threshold :
       {0.0, 0.15, 0.25, 0.30, 0.35, 0.40, 0.60, 1.0}) {
    double precision = 0, gtir = 0, expansions = 0, candidates = 0;
    int runs = 0;
    for (const QueryConceptSpec& spec : db->catalog().queries()) {
      StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
      if (!gt.ok()) continue;
      for (int seed = 1; seed <= seeds; ++seed) {
        QdOptions qd_options;
        qd_options.boundary_threshold = threshold;
        StatusOr<RunOutcome> outcome = SessionRunner::RunQd(
            *rfs, *gt, qd_options, PaperProtocol(seed));
        if (!outcome.ok()) continue;
        precision += outcome->final_precision;
        gtir += outcome->final_gtir;
        expansions += static_cast<double>(
            outcome->qd_stats.boundary_expansions);
        candidates +=
            static_cast<double>(outcome->qd_stats.knn_candidates);
        ++runs;
      }
    }
    if (runs == 0) continue;
    table.AddRow({TablePrinter::Num(threshold, 2),
                  TablePrinter::Num(precision / runs),
                  TablePrinter::Num(gtir / runs),
                  TablePrinter::Num(expansions / runs, 1),
                  TablePrinter::Num(candidates / runs, 0)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: expansions (and searched candidates) decrease "
      "monotonically with the threshold; quality is stable in the paper's "
      "0.2-0.6 operating range.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
