#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/database_io.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/rfs/rfs_serialization.h"

namespace qdcbir {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_.emplace_back(arg.substr(2), "1");
    } else {
      values_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
    }
  }
}

std::string Flags::Str(const std::string& name,
                       const std::string& fallback) const {
  for (const auto& [key, value] : values_) {
    if (key == name) return value;
  }
  return fallback;
}

std::int64_t Flags::Int(const std::string& name, std::int64_t fallback) const {
  const std::string v = Str(name, "");
  if (v.empty()) return fallback;
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Flags::Double(const std::string& name, double fallback) const {
  const std::string v = Str(name, "");
  if (v.empty()) return fallback;
  return std::strtod(v.c_str(), nullptr);
}

std::vector<std::int64_t> Flags::IntList(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const std::string v = Str(name, "");
  if (v.empty()) return fallback;
  std::vector<std::int64_t> values;
  std::size_t start = 0;
  while (start <= v.size()) {
    std::size_t comma = v.find(',', start);
    if (comma == std::string::npos) comma = v.size();
    const std::string token = v.substr(start, comma - start);
    if (!token.empty()) {
      values.push_back(std::strtoll(token.c_str(), nullptr, 10));
    }
    start = comma + 1;
  }
  return values.empty() ? fallback : values;
}

namespace {

/// Escapes the characters that may plausibly appear in a bench label; the
/// writer is for machine-diffable result files, not arbitrary text.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c == '\n' ? ' ' : c);
  }
  return out;
}

}  // namespace

Status AppendBenchJson(const std::string& path,
                       const std::vector<BenchRecord>& records) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return Status::Internal("cannot open bench results file: " + path);
  }
  // One registry snapshot per append keeps all records of a sweep
  // invocation comparable (counters are cumulative across the process).
  const std::string obs_snapshot =
      obs::MetricsRegistry::Global().SnapshotJson();
  for (const BenchRecord& r : records) {
    out << "{\"bench\":\"" << JsonEscape(r.bench) << "\""
        << ",\"config\":\"" << JsonEscape(r.config) << "\""
        << ",\"threads\":" << r.threads;
    char wall[64];
    std::snprintf(wall, sizeof(wall), "%.9g", r.wall_seconds);
    out << ",\"wall_seconds\":" << wall;
    for (const auto& [key, value] : r.metrics) {
      char num[64];
      std::snprintf(num, sizeof(num), "%.9g", value);
      out << ",\"" << JsonEscape(key) << "\":" << num;
    }
    out << ",\"obs\":" << obs_snapshot << "}\n";
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

RfsBuildOptions PaperRfsOptions() {
  RfsBuildOptions options;
  options.tree.max_entries = 100;
  options.tree.min_entries = 70;  // split minimum clamps internally
  options.representatives.fraction = 0.05;
  options.representatives.min_per_node = 3;
  return options;
}

ProtocolOptions PaperProtocol(std::uint64_t seed) {
  ProtocolOptions protocol;
  protocol.feedback_rounds = 3;
  protocol.browse_budget = 60;
  protocol.max_picks_per_round = 10;
  protocol.seed = seed;
  return protocol;
}

StatusOr<ImageDatabase> GetDatabase(std::size_t total_images,
                                    bool with_channels,
                                    const std::string& cache_dir) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  const std::string path = cache_dir + "/db_" + std::to_string(total_images) +
                           (with_channels ? "_ch" : "_nc") + ".bin";
  if (std::filesystem::exists(path)) {
    // Overlapped chunk load; falls back to re-synthesis below on any typed
    // failure (kCorrupt / kTruncated / kVersionMismatch), so a damaged or
    // legacy cache file can never poison a benchmark run.
    ThreadPool pool;
    SnapshotLoadOptions load_options;
    load_options.pool = &pool;
    StatusOr<ImageDatabase> cached = DatabaseIo::LoadDatabase(path, load_options);
    if (cached.ok() && cached->size() == total_images) return cached;
    if (!cached.ok()) {
      std::fprintf(stderr, "[bench] snapshot cache at %s unusable (%s); "
                   "re-synthesizing\n",
                   path.c_str(), cached.status().ToString().c_str());
    } else {
      std::fprintf(stderr, "[bench] stale cache at %s; rebuilding\n",
                   path.c_str());
    }
  }

  WallTimer timer;
  StatusOr<Catalog> catalog = Catalog::Build();
  if (!catalog.ok()) return catalog.status();
  SynthesizerOptions options;
  options.total_images = total_images;
  options.extract_viewpoint_channels = with_channels;
  std::fprintf(stderr,
               "[bench] synthesizing %zu images (%s viewpoint channels)...\n",
               total_images, with_channels ? "with" : "without");
  StatusOr<ImageDatabase> db =
      DatabaseSynthesizer::Synthesize(*catalog, options);
  if (!db.ok()) return db.status();
  std::fprintf(stderr, "[bench] synthesized in %.1f s\n", timer.Seconds());

  const Status save = DatabaseIo::SaveDatabase(*db, path);
  if (!save.ok()) {
    std::fprintf(stderr, "[bench] warning: could not cache database: %s\n",
                 save.ToString().c_str());
  }
  return db;
}

StatusOr<RfsTree> GetRfs(const ImageDatabase& db,
                         const RfsBuildOptions& options,
                         const std::string& cache_key,
                         const std::string& cache_dir) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  const std::string path = cache_dir + "/rfs_" + cache_key + "_" +
                           std::to_string(db.size()) + ".bin";
  if (std::filesystem::exists(path)) {
    StatusOr<RfsTree> cached = RfsSerializer::LoadFromFile(path);
    if (cached.ok() && cached->num_images() == db.size()) return cached;
  }
  WallTimer timer;
  StatusOr<RfsTree> tree = RfsBuilder::Build(db.features(), options);
  if (!tree.ok()) return tree.status();
  std::fprintf(stderr, "[bench] built RFS (%zu images) in %.1f s\n", db.size(),
               timer.Seconds());
  const Status save = RfsSerializer::SaveToFile(*tree, path);
  if (!save.ok()) {
    std::fprintf(stderr, "[bench] warning: could not cache RFS: %s\n",
                 save.ToString().c_str());
  }
  return tree;
}

void PrintHeader(const std::string& title, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n\n");
}

double LinearCorrelation(const std::vector<double>& x,
                         const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace bench
}  // namespace qdcbir
