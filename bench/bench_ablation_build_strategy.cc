// Ablation: the RFS "data clustering" stage (DESIGN.md design choice).
//
// The paper describes the RFS as a hierarchical clustering of the database
// (an R*-tree in their prototype). This library offers three construction
// strategies; the ablation compares their retrieval quality and build cost:
//   - clustered : hierarchical k-means bulk load (leaves = visual clusters)
//   - tgs_bulk  : spatial median-partition bulk load
//   - insertion : classic one-at-a-time R* insertion
//
// Flags: --images=6000 --seeds=3 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/obs/clock.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 6000));
  const int seeds = static_cast<int>(flags.Int("seeds", 3));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Ablation — RFS data-clustering strategy",
              "Retrieval quality and build cost of the three index "
              "construction strategies, over the 11 queries and " +
                  std::to_string(seeds) + " users at " +
                  std::to_string(images) + " images.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/false, cache);
  if (!db.ok()) return 1;

  TablePrinter table({"Strategy", "Build (s)", "Height", "Leaves",
                      "Precision", "GTIR"});
  for (const RfsBuildStrategy strategy :
       {RfsBuildStrategy::kClustered, RfsBuildStrategy::kTgsBulkLoad,
        RfsBuildStrategy::kInsertion}) {
    RfsBuildOptions build = PaperRfsOptions();
    build.strategy = strategy;

    WallTimer timer;
    StatusOr<RfsTree> rfs = RfsBuilder::Build(db->features(), build);
    const double build_seconds = timer.Seconds();
    if (!rfs.ok()) {
      std::fprintf(stderr, "%s: %s\n", RfsBuildStrategyName(strategy),
                   rfs.status().ToString().c_str());
      continue;
    }
    const RfsTree::Stats stats = rfs->ComputeStats();

    double precision = 0, gtir = 0;
    int runs = 0;
    for (const QueryConceptSpec& spec : db->catalog().queries()) {
      StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
      if (!gt.ok()) continue;
      for (int seed = 1; seed <= seeds; ++seed) {
        StatusOr<RunOutcome> outcome = SessionRunner::RunQd(
            *rfs, *gt, QdOptions{}, PaperProtocol(seed));
        if (!outcome.ok()) continue;
        precision += outcome->final_precision;
        gtir += outcome->final_gtir;
        ++runs;
      }
    }
    if (runs == 0) continue;
    table.AddRow({RfsBuildStrategyName(strategy),
                  TablePrinter::Num(build_seconds, 2),
                  std::to_string(stats.height),
                  std::to_string(stats.leaf_count),
                  TablePrinter::Num(precision / runs),
                  TablePrinter::Num(gtir / runs)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: the clustered strategy wins on precision (leaves "
      "hold whole visual clusters, so localized k-NN stays pure); the "
      "spatial strategies are cheaper to build but slice clusters across "
      "leaf boundaries.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
