// Reproduces the paper's Section 4 prototype statistics: with node capacity
// 70..100 the 15,000-image RFS structure is 3 levels deep and designates
// about 5% of the database as representative images.
//
// Flags: --images=15000 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/obs/clock.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 15000));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Section 4 — RFS structure build statistics",
              "Node capacity 70..100, representative fraction 5% (the "
              "paper's prototype configuration).");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/true, cache);
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Build fresh (uncached) to time construction.
  WallTimer timer;
  StatusOr<RfsTree> rfs = RfsBuilder::Build(db->features(), PaperRfsOptions());
  const double build_seconds = timer.Seconds();
  if (!rfs.ok()) {
    std::fprintf(stderr, "rfs: %s\n", rfs.status().ToString().c_str());
    return 1;
  }
  const Status invariants = rfs->CheckInvariants();
  const RfsTree::Stats stats = rfs->ComputeStats();

  TablePrinter table({"Metric", "Paper", "Measured"});
  table.AddRow({"Database size", "15000", std::to_string(stats.total_images)});
  table.AddRow({"Tree levels", "3", std::to_string(stats.height)});
  table.AddRow({"Representative fraction", "5%",
                TablePrinter::Num(100.0 * stats.representative_fraction, 1) +
                    "%"});
  table.AddRow({"Leaf nodes", "-", std::to_string(stats.leaf_count)});
  table.AddRow({"Total nodes", "-", std::to_string(stats.node_count)});
  table.AddRow({"Leaf representatives", "-",
                std::to_string(stats.leaf_representatives)});
  table.AddRow({"Build time (s)", "-", TablePrinter::Num(build_seconds, 1)});
  table.AddRow({"Invariants", "-", invariants.ok() ? "OK" : "BROKEN"});
  table.Print(std::cout);

  std::printf(
      "\nShape checks (paper claims):\n"
      "  - 3-level tree at 15k images / 70..100 capacity: %s (measured %d)\n"
      "  - ~5%% representatives: %s (measured %.1f%%)\n",
      stats.height == 3 ? "HOLDS" : "DIFFERS",
      stats.height,
      stats.representative_fraction > 0.035 &&
              stats.representative_fraction < 0.085
          ? "HOLDS"
          : "DIFFERS",
      100.0 * stats.representative_fraction);
  return invariants.ok() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
