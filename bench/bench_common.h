#ifndef QDCBIR_BENCH_BENCH_COMMON_H_
#define QDCBIR_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qdcbir/core/status.h"
#include "qdcbir/dataset/database.h"
#include "qdcbir/eval/session_runner.h"
#include "qdcbir/rfs/rfs_builder.h"
#include "qdcbir/rfs/rfs_tree.h"

namespace qdcbir {
namespace bench {

/// Command-line flags shared by the benchmark binaries. All flags use the
/// form `--name=value`.
class Flags {
 public:
  Flags(int argc, char** argv);

  std::int64_t Int(const std::string& name, std::int64_t fallback) const;
  double Double(const std::string& name, double fallback) const;
  std::string Str(const std::string& name, const std::string& fallback) const;
  /// Comma-separated integer list, e.g. `--threads=1,2,4,8`.
  std::vector<std::int64_t> IntList(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

/// One entry of a `BENCH_*.json` results file. Every record reports the
/// wall-clock seconds of its measured section and the thread count it ran
/// with, so entries stay comparable across thread-count sweeps.
struct BenchRecord {
  std::string bench;   ///< benchmark id, e.g. "fig10_query_time"
  std::string config;  ///< free-form data-point label, e.g. "db=15000"
  std::size_t threads = 1;     ///< pool lanes the measured section used
  double wall_seconds = 0.0;   ///< wall-clock of the measured section
  /// Additional named measurements (medians, ratios, counters).
  std::vector<std::pair<std::string, double>> metrics;
};

/// Appends `records` to `path` as JSON lines (one object per record, so
/// sweep runs from several invocations accumulate into one file). Each
/// record carries an `obs` field with the process-wide metrics registry
/// snapshot at append time (counters, gauges, span histograms).
Status AppendBenchJson(const std::string& path,
                       const std::vector<BenchRecord>& records);

/// The paper prototype's configuration: R*-tree nodes with 70..100 entries,
/// 5% representative images, boundary-expansion threshold 0.4.
RfsBuildOptions PaperRfsOptions();

/// The paper's evaluation protocol: 3 feedback rounds, 21-image displays.
ProtocolOptions PaperProtocol(std::uint64_t seed);

/// Returns the paper-scale synthetic database (150 categories), loading it
/// from `cache_dir` when present and synthesizing + caching it otherwise.
/// `with_channels` controls extraction of the MV viewpoint channels.
StatusOr<ImageDatabase> GetDatabase(std::size_t total_images,
                                    bool with_channels,
                                    const std::string& cache_dir);

/// Builds (or loads from cache) the RFS tree for `db` under `options`.
/// `cache_key` distinguishes configurations in the cache directory.
StatusOr<RfsTree> GetRfs(const ImageDatabase& db,
                         const RfsBuildOptions& options,
                         const std::string& cache_key,
                         const std::string& cache_dir);

/// Prints a standard benchmark header naming the experiment.
void PrintHeader(const std::string& title, const std::string& description);

/// Least-squares linearity check: returns the correlation coefficient R of
/// y against x (|R| near 1 means the series is close to linear).
double LinearCorrelation(const std::vector<double>& x,
                         const std::vector<double>& y);

}  // namespace bench
}  // namespace qdcbir

#endif  // QDCBIR_BENCH_BENCH_COMMON_H_
