// Ablation: user-defined feature importance (the paper's §6 future work —
// "the user may define color as the most important feature").
//
// The localized subqueries of a QD session optionally rank candidates under
// per-dimension weights. This sweep compares uniform weighting against
// emphasizing one feature group at a time, on two kinds of queries:
//   - "rose": its sub-concepts (yellow vs red) are defined by color;
//   - "laptop": its sub-concepts differ by background complexity, which the
//     texture/edge groups carry.
//
// Flags: --images=6000 --seeds=3 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/features/extractor.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 6000));
  const int seeds = static_cast<int>(flags.Int("seeds", 3));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Ablation — feature-importance weighting (paper §6 future "
              "work)",
              "Per-query precision when the localized subqueries emphasize "
              "one feature group (weight 4x), over " +
                  std::to_string(seeds) + " users at " +
                  std::to_string(images) + " images.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/false, cache);
  if (!db.ok()) return 1;
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper_nc", cache);
  if (!rfs.ok()) return 1;

  struct Scheme {
    const char* name;
    std::vector<double> weights;
  };
  const Scheme schemes[] = {
      {"uniform", {}},
      {"color 4x", MakeGroupWeights(4.0, 1.0, 1.0)},
      {"texture 4x", MakeGroupWeights(1.0, 4.0, 1.0)},
      {"edge 4x", MakeGroupWeights(1.0, 1.0, 4.0)},
  };

  TablePrinter table(
      {"Weights", "rose prec", "rose GTIR", "laptop prec", "laptop GTIR",
       "all-11 prec", "all-11 GTIR"});
  for (const Scheme& scheme : schemes) {
    double rose_prec = 0, rose_gtir = 0, laptop_prec = 0, laptop_gtir = 0;
    double all_prec = 0, all_gtir = 0;
    int rose_runs = 0, laptop_runs = 0, all_runs = 0;
    for (const QueryConceptSpec& spec : db->catalog().queries()) {
      StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
      if (!gt.ok()) continue;
      for (int seed = 1; seed <= seeds; ++seed) {
        QdOptions qd_options;
        qd_options.feature_weights = scheme.weights;
        StatusOr<RunOutcome> outcome = SessionRunner::RunQd(
            *rfs, *gt, qd_options, PaperProtocol(seed));
        if (!outcome.ok()) continue;
        all_prec += outcome->final_precision;
        all_gtir += outcome->final_gtir;
        ++all_runs;
        if (spec.name == "rose") {
          rose_prec += outcome->final_precision;
          rose_gtir += outcome->final_gtir;
          ++rose_runs;
        } else if (spec.name == "laptop") {
          laptop_prec += outcome->final_precision;
          laptop_gtir += outcome->final_gtir;
          ++laptop_runs;
        }
      }
    }
    if (all_runs == 0) continue;
    table.AddRow({scheme.name,
                  TablePrinter::Num(rose_runs ? rose_prec / rose_runs : 0),
                  TablePrinter::Num(rose_runs ? rose_gtir / rose_runs : 0),
                  TablePrinter::Num(laptop_runs ? laptop_prec / laptop_runs : 0),
                  TablePrinter::Num(laptop_runs ? laptop_gtir / laptop_runs : 0),
                  TablePrinter::Num(all_prec / all_runs),
                  TablePrinter::Num(all_gtir / all_runs)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: emphasizing the feature group that defines a "
      "query's sub-concepts preserves or improves its precision; heavily "
      "weighting an uninformative group degrades it. Uniform weights are a "
      "solid default, which is why the paper leaves this as future work.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
