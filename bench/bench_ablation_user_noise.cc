// Ablation: robustness to imperfect relevance feedback.
//
// The paper's evaluation uses 20 human students; humans overlook relevant
// images and occasionally mark irrelevant ones. This sweep degrades the
// simulated user with a miss rate (probability of overlooking a relevant
// displayed image) and a false-mark rate (probability of marking an
// irrelevant one), and measures how QD and MV quality decay.
//
// QD is exposed to feedback noise in a specific way: a false mark does not
// merely bias a query point — it *opens a whole irrelevant subquery* that
// competes for result slots. The proportional allocation of §3.4 is the
// built-in defense: spurious single-mark subclusters receive few slots.
//
// Flags: --images=6000 --seeds=3 --cache=bench_cache

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/eval/table_printer.h"
#include "qdcbir/query/mv_engine.h"

namespace qdcbir {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.Int("images", 6000));
  const int seeds = static_cast<int>(flags.Int("seeds", 3));
  const std::string cache = flags.Str("cache", "bench_cache");

  PrintHeader("Ablation — imperfect user feedback",
              "Quality of QD and MV when the simulated user misses relevant "
              "images and falsely marks irrelevant ones; averaged over the "
              "11 queries and " + std::to_string(seeds) + " users at " +
                  std::to_string(images) + " images.");

  StatusOr<ImageDatabase> db =
      GetDatabase(images, /*with_channels=*/true, cache);
  if (!db.ok()) return 1;
  StatusOr<RfsTree> rfs = GetRfs(*db, PaperRfsOptions(), "paper", cache);
  if (!rfs.ok()) return 1;

  struct NoiseLevel {
    const char* name;
    double miss_rate;
    double false_rate;
  };
  // Rates are per *displayed* image; the user browses ~1,200 images per
  // round, so even a 0.5% false-mark rate yields several wrong marks per
  // session.
  const NoiseLevel levels[] = {
      {"oracle (0% / 0%)", 0.0, 0.0},
      {"careless (20% miss)", 0.2, 0.0},
      {"distracted (40% miss)", 0.4, 0.0},
      {"sloppy (20% miss, 0.2% false)", 0.2, 0.002},
      {"noisy (40% miss, 0.5% false)", 0.4, 0.005},
  };

  TablePrinter table({"User model (miss/false)", "QD prec", "QD GTIR",
                      "MV prec", "MV GTIR"});
  for (const NoiseLevel& level : levels) {
    double qd_prec = 0, qd_gtir = 0, mv_prec = 0, mv_gtir = 0;
    int qd_runs = 0, mv_runs = 0;
    for (const QueryConceptSpec& spec : db->catalog().queries()) {
      StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
      if (!gt.ok()) continue;
      for (int seed = 1; seed <= seeds; ++seed) {
        ProtocolOptions protocol = PaperProtocol(seed);
        protocol.oracle.miss_rate = level.miss_rate;
        protocol.oracle.false_mark_rate = level.false_rate;

        StatusOr<RunOutcome> qd =
            SessionRunner::RunQd(*rfs, *gt, QdOptions{}, protocol);
        if (qd.ok()) {
          qd_prec += qd->final_precision;
          qd_gtir += qd->final_gtir;
          ++qd_runs;
        }
        MvEngine mv_engine(&*db);
        StatusOr<RunOutcome> mv =
            SessionRunner::RunEngine(mv_engine, *gt, protocol);
        if (mv.ok()) {
          mv_prec += mv->final_precision;
          mv_gtir += mv->final_gtir;
          ++mv_runs;
        }
      }
    }
    if (qd_runs == 0 || mv_runs == 0) continue;
    table.AddRow({level.name, TablePrinter::Num(qd_prec / qd_runs),
                  TablePrinter::Num(qd_gtir / qd_runs),
                  TablePrinter::Num(mv_prec / mv_runs),
                  TablePrinter::Num(mv_gtir / mv_runs)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: quality decays gracefully with user noise, and "
      "QD's advantage over MV persists at every noise level (proportional "
      "result allocation keeps spurious subqueries small).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::bench::Run(argc, argv); }
